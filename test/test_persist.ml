(* Tests for real persistence: the file-backed sector store, the
   checksummed serialized-image format with atomic save, and recovery
   after a genuine kill -9 of a serving process. *)

module Simclock = S4_util.Simclock
module Rng = S4_util.Rng
module Geometry = S4_disk.Geometry
module Sim_disk = S4_disk.Sim_disk
module File_disk = S4_disk.File_disk
module Log = S4_seglog.Log
module Drive = S4.Drive
module Rpc = S4.Rpc
module Audit = S4.Audit
module Disk_image = S4_tools.Disk_image
module Crashtest = S4_tools.Crashtest
module History = S4_tools.History

let check = Alcotest.check
let qtest = Qseed.qtest
let cred = Rpc.admin_cred

let geom mb = Geometry.with_capacity Geometry.cheetah_9gb ~bytes:(mb * 1024 * 1024)

let with_tmp f =
  let path = Filename.temp_file "s4persist" ".s4" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

let oid_die = function
  | Rpc.R_oid oid -> oid
  | r -> Alcotest.failf "create: %a" Rpc.pp_resp r

let unit_die what = function
  | Rpc.R_unit -> ()
  | r -> Alcotest.failf "%s: %a" what Rpc.pp_resp r

(* --- File_disk ---------------------------------------------------------- *)

let test_file_roundtrip () =
  with_tmp (fun path ->
      let g = geom 16 in
      let f = File_disk.create ~path g in
      let data = Bytes.init (4 * 512) (fun i -> Char.chr (i land 0xff)) in
      File_disk.write f ~lba:10 data;
      check Alcotest.bool "read back" true (Bytes.equal data (File_disk.read f ~lba:10 ~sectors:4));
      check Alcotest.bool "unwritten is zeros" true
        (Bytes.equal (Bytes.make 512 '\000') (File_disk.read f ~lba:99 ~sectors:1));
      File_disk.erase f ~lba:11 ~sectors:1;
      check Alcotest.bool "erased to zeros" true
        (Bytes.equal (Bytes.make 512 '\000') (File_disk.read f ~lba:11 ~sectors:1));
      File_disk.sync f ~clock_ns:123_456_789L;
      File_disk.close f;
      (* A "new process". *)
      let f2 = File_disk.open_file path in
      check Alcotest.int64 "clock from header" 123_456_789L (File_disk.clock_ns f2);
      check Alcotest.string "geometry name" g.Geometry.name (File_disk.geometry f2).Geometry.name;
      check Alcotest.int "geometry sectors" g.Geometry.sectors
        (File_disk.geometry f2).Geometry.sectors;
      check Alcotest.bool "sector survived close" true
        (Bytes.equal (Bytes.sub data 0 512) (File_disk.read f2 ~lba:10 ~sectors:1));
      check Alcotest.bool "erase survived close" true
        (Bytes.equal (Bytes.make 512 '\000') (File_disk.read f2 ~lba:11 ~sectors:1));
      File_disk.close f2;
      File_disk.close f2 (* idempotent *))

let expect_failure what f =
  check Alcotest.bool what true (try ignore (f ()); false with Failure _ -> true)

let test_file_rejects_bad () =
  with_tmp (fun path ->
      let oc = open_out_bin path in
      output_string oc "definitely not a store, but long enough to probe";
      close_out oc;
      expect_failure "foreign file rejected" (fun () -> File_disk.open_file path));
  with_tmp (fun path ->
      File_disk.close (File_disk.create ~path (geom 16));
      (* Flip a byte inside the header payload: CRC must catch it. *)
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
      ignore (Unix.lseek fd 20 Unix.SEEK_SET);
      ignore (Unix.write fd (Bytes.make 1 '\xff') 0 1);
      Unix.close fd;
      expect_failure "corrupt header rejected" (fun () -> File_disk.open_file path))

(* --- serialized image: qcheck round-trip -------------------------------- *)

let sector_digest disk =
  let sectors = Sim_disk.capacity_sectors disk in
  let buf = Buffer.create 64 in
  let chunk = 1024 in
  let lba = ref 0 in
  while !lba < sectors do
    let n = min chunk (sectors - !lba) in
    Buffer.add_string buf (Digest.bytes (Sim_disk.peek disk ~lba:!lba ~sectors:n));
    lba := !lba + n
  done;
  Digest.string (Buffer.contents buf)

let gen_image =
  QCheck.Gen.(
    let* seed = int_bound 0xFFFF in
    let* nsectors = int_range 0 64 in
    let* clock_ns = map Int64.abs int64 in
    return (seed, nsectors, clock_ns))

let arb_image =
  QCheck.make
    ~print:(fun (s, n, c) -> Printf.sprintf "seed=%d sectors=%d clock=%Ld" s n c)
    gen_image

let qcheck_image_roundtrip =
  QCheck.Test.make ~name:"image save/load preserves clock and every sector" ~count:30 arb_image
    (fun (seed, nsectors, clock_ns) ->
      with_tmp (fun path ->
          let clock = Simclock.create () in
          Simclock.set clock clock_ns;
          let disk = Sim_disk.create ~geometry:(geom 16) clock in
          let rng = Rng.create ~seed in
          for _ = 1 to nsectors do
            let lba = Rng.int rng (Sim_disk.capacity_sectors disk) in
            Sim_disk.poke disk ~lba ~data:(Rng.bytes rng 512)
          done;
          Disk_image.save path clock disk;
          let clock2, disk2 = Disk_image.load path in
          Int64.equal (Simclock.now clock) (Simclock.now clock2)
          && String.equal (sector_digest disk) (sector_digest disk2)))

let test_image_corrupt_rejected () =
  let mk path =
    let clock = Simclock.create () in
    let disk = Sim_disk.create ~geometry:(geom 16) clock in
    Sim_disk.poke disk ~lba:7 ~data:(Bytes.make 512 'x');
    Disk_image.save path clock disk
  in
  let expect_corrupt what f =
    check Alcotest.bool what true
      (try ignore (f ()); false
       with Failure m ->
         if not (String.length m > 0 && String.index_opt m '(' <> None) then
           Alcotest.failf "%s: unhelpful message %S" what m;
         true)
  in
  with_tmp (fun path ->
      mk path;
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
      ignore (Unix.lseek fd 40 Unix.SEEK_SET);
      ignore (Unix.write fd (Bytes.make 1 '\x99') 0 1);
      Unix.close fd;
      expect_corrupt "flipped byte rejected" (fun () -> Disk_image.load path));
  with_tmp (fun path ->
      mk path;
      let sz = (Unix.stat path).Unix.st_size in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
      Unix.ftruncate fd (sz - 100);
      Unix.close fd;
      expect_corrupt "truncated rejected" (fun () -> Disk_image.load path));
  with_tmp (fun path ->
      let oc = open_out_bin path in
      output_string oc "garbage";
      close_out oc;
      expect_failure "foreign rejected" (fun () -> Disk_image.load path))

let test_save_is_atomic () =
  with_tmp (fun path ->
      let clock = Simclock.create () in
      Simclock.set clock 42L;
      let disk = Sim_disk.create ~geometry:(geom 16) clock in
      Sim_disk.poke disk ~lba:3 ~data:(Bytes.make 512 'v');
      Disk_image.save path clock disk;
      let before = Digest.file path in
      (* Force the save to fail mid-way: its temp slot is occupied by a
         directory, so the new image can never be written ... *)
      let tmp = path ^ ".tmp" in
      Unix.mkdir tmp 0o755;
      Fun.protect
        ~finally:(fun () -> Unix.rmdir tmp)
        (fun () ->
          Simclock.set clock 99L;
          Sim_disk.poke disk ~lba:3 ~data:(Bytes.make 512 'w');
          check Alcotest.bool "failed save raises" true
            (try Disk_image.save path clock disk; false with Sys_error _ -> true));
      (* ... and the previous image must be byte-identical and loadable. *)
      check Alcotest.string "old image untouched" before (Digest.file path);
      let clock2, disk2 = Disk_image.load path in
      check Alcotest.int64 "old clock" 42L (Simclock.now clock2);
      check Alcotest.bool "old sector" true
        (Bytes.equal (Bytes.make 512 'v') (Sim_disk.peek disk2 ~lba:3 ~sectors:1)))

(* --- the durability hole itself ----------------------------------------- *)

(* The bug this PR fixes: with a file-backed store, simply exiting
   without any save step (the moral equivalent of kill -9 after the
   last barrier) must lose nothing that was synced. *)
let test_file_backed_survives_no_save () =
  with_tmp (fun path ->
      let oid =
        let disk = Sim_disk.of_file (File_disk.create ~path (geom 16)) in
        let drive = Drive.format disk in
        let oid = oid_die (Drive.handle drive cred (Rpc.Create { acl = [] })) in
        let data = Bytes.of_string "synced and acked" in
        unit_die "write"
          (Drive.handle drive cred
             (Rpc.Write { oid; off = 0; len = Bytes.length data; data = Some data }));
        unit_die "sync" (Drive.handle drive cred Rpc.Sync);
        (* No Disk_image.save, no Log.sync: the process just dies. *)
        Sim_disk.close disk;
        oid
      in
      let clock2, disk2 = Disk_image.load_any path in
      ignore clock2;
      let drive2 = Drive.attach disk2 in
      check (Alcotest.list Alcotest.string) "fsck clean" [] (Drive.fsck drive2);
      (match Drive.handle drive2 cred (Rpc.Read { oid; off = 0; len = 16; at = None }) with
       | Rpc.R_data b -> check Alcotest.string "acked write survived" "synced and acked"
                           (Bytes.to_string b)
       | r -> Alcotest.failf "read after reopen: %a" Rpc.pp_resp r);
      Sim_disk.close disk2)

(* Identical semantics over both backings: the same seeded workload
   must leave the same simulated clock and the same sector contents. *)
let test_mem_file_equivalence () =
  with_tmp (fun path ->
      let workload disk =
        let drive = Drive.format disk in
        let rng = Rng.create ~seed:7 in
        let oids =
          Array.init 4 (fun _ -> oid_die (Drive.handle drive cred (Rpc.Create { acl = [] })))
        in
        for i = 0 to 99 do
          let oid = oids.(Rng.int rng 4) in
          let len = 1 + Rng.int rng 2048 in
          let req =
            match Rng.int rng 4 with
            | 0 -> Rpc.Append { oid; len; data = Some (Rng.bytes rng len) }
            | 1 -> Rpc.Write { oid; off = Rng.int rng 4096; len; data = Some (Rng.bytes rng len) }
            | 2 -> Rpc.Truncate { oid; size = Rng.int rng 8192 }
            | _ -> Rpc.Sync
          in
          match Drive.handle drive cred req with
          | Rpc.R_error e -> Alcotest.failf "op %d: %a" i Rpc.pp_error e
          | _ -> ()
        done;
        unit_die "final sync" (Drive.handle drive cred Rpc.Sync)
      in
      let mem = Sim_disk.create ~geometry:(geom 16) (Simclock.create ()) in
      workload mem;
      let file = Sim_disk.of_file (File_disk.create ~path (geom 16)) in
      workload file;
      check Alcotest.int64 "same simulated clock" (Simclock.now (Sim_disk.clock mem))
        (Simclock.now (Sim_disk.clock file));
      check Alcotest.string "same sector contents" (sector_digest mem) (sector_digest file);
      Sim_disk.close file)

(* Journal blocks can reach the file without a barrier (segment close);
   their entry times then postdate the header clock a restart resumes
   from. Recovery must bump the clock past them so mutation times stay
   monotone across the restart. *)
let test_recovery_clock_monotone () =
  with_tmp (fun path ->
      let oid =
        let disk = Sim_disk.of_file (File_disk.create ~path (geom 16)) in
        let drive = Drive.format disk in
        let oid = oid_die (Drive.handle drive cred (Rpc.Create { acl = [] })) in
        unit_die "sync" (Drive.handle drive cred Rpc.Sync);
        (* Enough unsynced appends to fill and close log segments: their
           journal blocks hit the file with no barrier behind them. *)
        let chunk = Bytes.make 4096 'j' in
        for _ = 1 to 300 do
          unit_die "append"
            (Drive.handle drive cred (Rpc.Append { oid; len = 4096; data = Some chunk }))
        done;
        Sim_disk.close disk;
        oid
      in
      let _, disk2 = Disk_image.load_any path in
      let drive2 = Drive.attach disk2 in
      let clock2 = Sim_disk.clock disk2 in
      let h = History.create drive2 in
      let recovered_times = History.version_times h oid in
      check Alcotest.bool "some journal entries recovered" true (recovered_times <> []);
      List.iter
        (fun t ->
          if Int64.compare t (Simclock.now clock2) >= 0 then
            Alcotest.failf "recovered entry time %Ld not before resumed clock %Ld" t
              (Simclock.now clock2))
        recovered_times;
      (* New mutations must get strictly newer times than everything
         recovered. *)
      let before = Simclock.now clock2 in
      let oid2 = oid_die (Drive.handle drive2 cred (Rpc.Create { acl = [] })) in
      ignore oid2;
      check Alcotest.bool "clock advances" true (Simclock.now clock2 > before);
      Sim_disk.close disk2)

(* --- the real thing: kill -9 a serving process -------------------------- *)

let test_kill9_smoke () =
  let reports = Crashtest.kill9_sweep ~seed:1042 ~runs:3 () in
  List.iter
    (fun r ->
      if r.Crashtest.violations <> [] then
        Alcotest.failf "kill9 %a" Crashtest.pp_report r)
    reports;
  check Alcotest.int "three kills" 3 (List.length reports);
  List.iter
    (fun r -> check Alcotest.bool "acked ops ran" true (r.Crashtest.ops_before_crash > 0))
    reports

(* SIGKILL between the audit flush and the seal write must read back as
   a crash-truncated tail, never as tampering. *)
let test_seal_gap () =
  let report, strict = Crashtest.seal_gap_run ~seed:907 () in
  if report.Crashtest.violations <> [] then
    Alcotest.failf "seal gap %a" Crashtest.pp_report report;
  check Alcotest.bool "strict chain clean" true (S4_integrity.Chain.clean strict);
  check Alcotest.int "no record read as tampered" (-1) strict.S4_integrity.Chain.v_first_bad

(* Full PostMark through NFS + wire against a forked server killed
   mid-run: zero acked-write loss. Every audit record below a
   checkpoint instant (instant read, then acked Sync) must be recovered
   verbatim from the surviving file. *)
let test_postmark_kill9 () =
  let r = Crashtest.kill9_postmark_run ~seed:2042 () in
  if r.Crashtest.pm_violations <> [] then
    Alcotest.failf "postmark kill9 %a" Crashtest.pp_postmark_report r;
  check Alcotest.bool "checkpoints taken" true (r.Crashtest.pm_checkpoints > 0);
  check Alcotest.bool "writes were acked" true (r.Crashtest.pm_acked > 0);
  check Alcotest.bool "acked records all recovered" true
    (r.Crashtest.pm_recovered >= r.Crashtest.pm_acked)

let () =
  Alcotest.run "s4_persist"
    [
      ( "file-disk",
        [
          Alcotest.test_case "roundtrip across close" `Quick test_file_roundtrip;
          Alcotest.test_case "foreign and corrupt rejected" `Quick test_file_rejects_bad;
        ] );
      ( "image",
        [
          qtest qcheck_image_roundtrip;
          Alcotest.test_case "corrupt and truncated rejected" `Quick test_image_corrupt_rejected;
          Alcotest.test_case "save is atomic" `Quick test_save_is_atomic;
        ] );
      ( "durability",
        [
          Alcotest.test_case "file-backed survives exit with no save" `Quick
            test_file_backed_survives_no_save;
          Alcotest.test_case "mem and file backings are equivalent" `Quick
            test_mem_file_equivalence;
          Alcotest.test_case "recovery keeps mutation times monotone" `Quick
            test_recovery_clock_monotone;
        ] );
      ( "kill9",
        [
          Alcotest.test_case "three real kills" `Quick test_kill9_smoke;
          Alcotest.test_case "seal gap reads as truncation" `Quick test_seal_gap;
          Alcotest.test_case "postmark: zero acked-write loss" `Quick test_postmark_kill9;
        ] );
    ]
