module Rpc = S4.Rpc
module Drive = S4.Drive
module Acl = S4.Acl
module Audit = S4.Audit
module Chain = S4_integrity.Chain
module Simclock = S4_util.Simclock
module Rng = S4_util.Rng
module N = S4_nfs.Nfs_types
module Translator = S4_nfs.Translator
module Systems = S4_workload.Systems
module Sim_disk = S4_disk.Sim_disk
module Geometry = S4_disk.Geometry
module Trace = S4_obs.Trace
module Check = S4_obs.Check

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)

type deployment = Single_drive | Array of { shards : int; mirrored : bool }

type config = {
  seed : int;
  deployment : deployment;
  files_per_dir : int;
  legit_ops : int;
  attacks_per_class : int;
  detect_every_s : float;
  disk_mb : int;
  trace : bool;
}

let default =
  {
    seed = 42;
    deployment = Single_drive;
    files_per_dir = 8;
    legit_ops = 60;
    attacks_per_class = 4;
    detect_every_s = 2.0;
    disk_mb = 64;
    trace = false;
  }

type attack_class = Trojan | Scrub | Timestomp | Mass_delete | Exfil

let classes = [| Trojan; Scrub; Timestomp; Mass_delete; Exfil |]

let class_name = function
  | Trojan -> "trojan"
  | Scrub -> "scrub"
  | Timestomp -> "timestomp"
  | Mass_delete -> "mass_delete"
  | Exfil -> "exfil"

type outcome = {
  o_mark : Landmark.mark;
  o_classes : (string * float) list;
      (** per-class detection latency in simulated seconds; negative =
          the IDS never fired for that class *)
  o_attack_ops : int;
  o_legit_ops : int;
  o_denied_probes : int;
  o_damage_objects : int;
  o_damage_bytes : int;
  o_false_negatives : string list;
  o_false_positives : string list;
  o_rollback_s : float;
  o_recovery_rpcs : int;
  o_recovery_ops_per_s : float;
  o_report : Recovery.report;
  o_surviving : string list;
  o_lost : string list;
  o_violations : string list;
}

let detected o = List.for_all (fun (_, l) -> l >= 0.0) o.o_classes

let clean o =
  detected o && o.o_surviving = [] && o.o_lost = [] && o.o_violations = []
  && o.o_false_negatives = [] && o.o_false_positives = []

(* ------------------------------------------------------------------ *)
(* Principals                                                          *)

(* The attacker is a compromised client machine holding user 1's valid
   credentials (the paper's threat model: everything above the drive's
   security perimeter may be subverted). Only the client field tells
   the drive-side audit trail apart — which is exactly what forensics
   has to lean on. *)
let admin = Rpc.admin_cred
let legit1 = Rpc.user_cred ~user:1 ~client:10
let legit2 = Rpc.user_cred ~user:2 ~client:11
let attacker = Rpc.user_cred ~user:1 ~client:66

(* ------------------------------------------------------------------ *)
(* Harness state                                                       *)

type sys = {
  target : Target.t;
  clock : Simclock.t;
  tr_admin : Translator.t;
  tr_u1 : Translator.t;
  tr_u2 : Translator.t;
  tr_att : Translator.t;
}

let build cfg =
  match cfg.deployment with
  | Single_drive ->
    let clock = Simclock.create () in
    let geometry =
      Geometry.with_capacity Geometry.cheetah_9gb ~bytes:(cfg.disk_mb * 1024 * 1024)
    in
    let drive =
      Drive.format ~config:Systems.content_drive_config (Sim_disk.create ~geometry clock)
    in
    let tr cred = Translator.mount ~cred (Translator.Local drive) in
    {
      target = Target.Drive drive;
      clock;
      tr_admin = tr admin;
      tr_u1 = tr legit1;
      tr_u2 = tr legit2;
      tr_att = tr attacker;
    }
  | Array { shards; mirrored } ->
    let s =
      Systems.s4_array
        ~config:
          {
            Systems.Config.content with
            disk_mb = Some cfg.disk_mb;
            mirrored;
          }
        ~shards ()
    in
    let router = Option.get s.Systems.router in
    let backend = S4_shard.Router.backend router in
    let tr cred = Translator.mount ~cred (Translator.Backend backend) in
    {
      target = Target.Array router;
      clock = s.Systems.clock;
      tr_admin = tr admin;
      tr_u1 = tr legit1;
      tr_u2 = tr legit2;
      tr_att = tr attacker;
    }

let nfs_err e = Format.asprintf "%a" N.pp_error e

let fail_nfs what = function
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "Campaign: %s: %s" what (nfs_err e))

(* Multiple translators share one backend, so each acts on a cold
   cache: another principal may have changed any directory since. *)
let via tr f =
  Translator.invalidate_caches tr;
  f ()

let handle t cred req = Target.handle t.target cred req

let oid_of_path t path =
  via t.tr_admin (fun () ->
      match Translator.lookup_path t.tr_admin path with
      | Ok (fh, _) -> fh
      | Error e -> failwith (Printf.sprintf "Campaign: resolve %s: %s" path (nfs_err e)))

let set_acl_list t oid entries =
  List.iteri
    (fun index entry -> ignore (handle t admin (Rpc.Set_acl { oid; index; entry })))
    entries

let read_raw t cred oid =
  match handle t cred (Rpc.Get_attr { oid; at = None }) with
  | Rpc.R_attr b when Bytes.length b > 0 ->
    let a = N.decode_attr b in
    (match handle t cred (Rpc.Read { oid; off = 0; len = a.N.size; at = None }) with
     | Rpc.R_data d -> Some (a, d)
     | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Ground truth                                                        *)

type truth = {
  gt_mut : (int64, unit) Hashtbl.t;  (* oids the attacker successfully mutated *)
  gt_read : (int64, unit) Hashtbl.t;  (* oids the attacker successfully read *)
  gt_denied : (int64, unit) Hashtbl.t;  (* nonzero oids of denied attacker requests *)
  attacked_paths : (string, unit) Hashtbl.t;  (* sys paths whose state the attacker changed *)
  mutable created_paths : (string * int64) list;  (* attacker-created files *)
  mutable timestomped : string list;
  mutable damage_bytes : int;
  mutable attack_ops : int;
  mutable denied_ops : int;
  first_attack : (attack_class, int64) Hashtbl.t;
}

let fresh_truth () =
  {
    gt_mut = Hashtbl.create 64;
    gt_read = Hashtbl.create 64;
    gt_denied = Hashtbl.create 16;
    attacked_paths = Hashtbl.create 64;
    created_paths = [];
    timestomped = [];
    damage_bytes = 0;
    attack_ops = 0;
    denied_ops = 0;
    first_attack = Hashtbl.create 8;
  }

(* ------------------------------------------------------------------ *)
(* The campaign                                                        *)

let run cfg =
  let rng = Rng.create ~seed:cfg.seed in
  if cfg.trace then begin
    Trace.clear ();
    Trace.enable ()
  end;
  let t = build cfg in
  let now () = Simclock.now t.clock in
  let jitter () = Simclock.advance t.clock (Int64.of_int (Rng.int_in rng ~min:200_000 ~max:5_000_000)) in
  let content tag i n = Bytes.of_string (Printf.sprintf "%s-%d original payload %s" tag i (String.make n 'x')) in

  (* --- populate --------------------------------------------------- *)
  let dirs = [ "sys"; "sys/bin"; "sys/log"; "sys/data"; "home"; "home/u1"; "home/u2"; "mail" ] in
  List.iter (fun d -> ignore (fail_nfs d (Translator.mkdir_p t.tr_admin d))) dirs;
  let dir_oid = Hashtbl.create 16 in
  List.iter (fun d -> Hashtbl.replace dir_oid d (oid_of_path t d)) dirs;
  let doid d = Hashtbl.find dir_oid d in
  (* Skeleton ACLs: the drive enforces these below the compromised
     client, so user 1's stolen credential opens sys/ and home/u1 but
     not home/u2 — failed probes there land in the audit trail. *)
  set_acl_list t (oid_of_path t "") [ Acl.public_read ];
  List.iter
    (fun d -> set_acl_list t (doid d) [ Acl.owner_entry ~user:1; Acl.public_read ])
    [ "sys"; "sys/bin"; "sys/log"; "sys/data" ];
  set_acl_list t (doid "home") [ Acl.public_read ];
  set_acl_list t (doid "home/u1") [ Acl.owner_entry ~user:1 ];
  set_acl_list t (doid "home/u2") [ Acl.owner_entry ~user:2 ];
  set_acl_list t (doid "mail") [ Acl.owner_entry ~user:1; Acl.owner_entry ~user:2 ];
  let n = cfg.files_per_dir in
  let path_list tag = List.init n (fun i -> Printf.sprintf "%s-%d" tag i) in
  let bin_paths = List.map (fun f -> "sys/bin/" ^ f) (path_list "bin") in
  let log_paths = List.map (fun f -> "sys/log/" ^ f) (path_list "log") in
  let data_paths = List.map (fun f -> "sys/data/" ^ f) (path_list "data") in
  let u1_paths = List.map (fun f -> "home/u1/" ^ f) (path_list "doc") in
  let u2_paths = List.map (fun f -> "home/u2/" ^ f) (path_list "secret") in
  let mail_paths = List.map (fun f -> "mail/" ^ f) (path_list "mail") in
  let write_as tr path data = ignore (fail_nfs path (via tr (fun () -> Translator.write_file tr path data))) in
  List.iteri (fun i p -> write_as t.tr_u1 p (content "bin" i (64 + Rng.int rng 512))) bin_paths;
  List.iteri (fun i p -> write_as t.tr_u1 p (content "log" i (64 + Rng.int rng 512))) log_paths;
  List.iteri (fun i p -> write_as t.tr_u1 p (content "data" i (64 + Rng.int rng 1024))) data_paths;
  List.iteri (fun i p -> write_as t.tr_u1 p (content "doc" i (64 + Rng.int rng 512))) u1_paths;
  List.iteri (fun i p -> write_as t.tr_u2 p (content "secret" i (64 + Rng.int rng 512))) u2_paths;
  List.iteri
    (fun i p -> write_as (if i mod 2 = 0 then t.tr_u1 else t.tr_u2) p (content "mail" i 128))
    mail_paths;
  let sys_paths = bin_paths @ log_paths @ data_paths in
  let path_oid = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace path_oid p (oid_of_path t p)) (sys_paths @ u1_paths @ u2_paths @ mail_paths);
  let poid p = Hashtbl.find path_oid p in

  (* The attacker cased the joint before the compromise window: its
     translator resolves every target it can legally reach, so the
     in-window ground truth is exactly the raw requests issued below. *)
  List.iter
    (fun p -> via t.tr_att (fun () -> ignore (Translator.lookup_path t.tr_att p)))
    (sys_paths @ u1_paths);

  (* Baseline snapshot: contents and attributes of everything under
     sys/ (reads only — the state cannot drift before the mark). *)
  let baseline = Hashtbl.create 64 in
  List.iter
    (fun p ->
      match read_raw t admin (poid p) with
      | Some (a, d) -> Hashtbl.replace baseline p (a, d)
      | None -> failwith ("Campaign: baseline read failed for " ^ p))
    sys_paths;

  (* --- the pre-intrusion mark -------------------------------------- *)
  let lm = Landmark.of_target t.target in
  let mark =
    match Landmark.mark lm ~name:"pre-intrusion" with
    | Ok m -> m
    | Error e -> failwith ("Campaign: mark failed: " ^ e)
  in
  let t_mark = mark.Landmark.m_at in

  (* --- op streams --------------------------------------------------- *)
  let truth = fresh_truth () in
  let gt_write oid = Hashtbl.replace truth.gt_mut oid () in
  let gt_read oid = Hashtbl.replace truth.gt_read oid () in
  let attack_first cls =
    if not (Hashtbl.mem truth.first_attack cls) then Hashtbl.replace truth.first_attack cls (now ())
  in
  let raw_attack cls req ~touches =
    attack_first cls;
    truth.attack_ops <- truth.attack_ops + 1;
    let resp = handle t attacker req in
    (match resp with
     | Rpc.R_error Rpc.Permission_denied ->
       truth.denied_ops <- truth.denied_ops + 1;
       let oid = ref 0L in
       (match req with
        | Rpc.Read { oid = o; _ } | Rpc.Write { oid = o; _ } | Rpc.Delete { oid = o }
        | Rpc.Set_attr { oid = o; _ } | Rpc.Get_attr { oid = o; _ }
        | Rpc.Truncate { oid = o; _ } ->
          oid := o
        | _ -> ());
       if !oid <> 0L then Hashtbl.replace truth.gt_denied !oid ()
     | Rpc.R_error e ->
       failwith
         (Format.asprintf "Campaign: attacker %s unexpectedly failed: %a" (Rpc.op_name req)
            Rpc.pp_error e)
     | _ -> touches resp);
    resp
  in
  let attacker_write cls oid data =
    ignore
      (raw_attack cls
         (Rpc.Write { oid; off = 0; len = Bytes.length data; data = Some data })
         ~touches:(fun _ ->
           gt_write oid;
           truth.damage_bytes <- truth.damage_bytes + Bytes.length data))
  in
  let attacker_truncate cls oid =
    ignore (raw_attack cls (Rpc.Truncate { oid; size = 0 }) ~touches:(fun _ -> gt_write oid))
  in
  (* Raw directory-slot surgery: the compromised client speaks the
     translator's on-disk format directly. *)
  let dir_slots dir_o =
    match read_raw t attacker dir_o with
    | Some (_, d) -> d
    | None -> failwith "Campaign: attacker cannot read directory"
  in
  let append_slot cls dir_o name fh =
    match read_raw t attacker dir_o with
    | None -> failwith "Campaign: attacker cannot read directory"
    | Some (a, d) ->
      gt_read dir_o;
      let slot = N.encode_slot (Some { N.name; fh }) in
      let data = Bytes.cat d slot in
      attacker_write cls dir_o data;
      (* Grow the directory's recorded size so the new entry resolves,
         but keep the old mtime — the stealthy way in. *)
      ignore
        (raw_attack cls
           (Rpc.Set_attr { oid = dir_o; attr = N.encode_attr { a with N.size = Bytes.length data } })
           ~touches:(fun _ -> gt_write dir_o))
  in
  let clear_slot cls dir_o name =
    let d = dir_slots dir_o in
    gt_read dir_o;
    let slots, _ = N.decode_dir_slots d in
    match List.find_opt (fun ((e : N.dirent), _) -> e.N.name = name) slots with
    | None -> ()
    | Some (_, idx) ->
      let z = N.encode_slot None in
      Bytes.blit z 0 d (idx * N.slot_size) N.slot_size;
      attacker_write cls dir_o d
  in
  let mark_attacked p = Hashtbl.replace truth.attacked_paths p () in
  let pick_path rng l = List.nth l (Rng.int rng (List.length l)) in
  let live t oid =
    match handle t admin (Rpc.Get_attr { oid; at = None }) with
    | Rpc.R_attr b -> Bytes.length b > 0
    | _ -> false
  in
  (* The exfiltration targets and the mass-deletion targets are
     disjoint halves of sys/data, so the slow reader never trips over
     an object a burst already destroyed. *)
  let half = max 1 (List.length data_paths / 2) in
  let exfil_paths = List.filteri (fun i _ -> i < half) data_paths in
  let del_paths = List.filteri (fun i _ -> i >= half) data_paths in
  let exfil_cursor = ref 0 in
  let next_exfil () =
    let p = List.nth exfil_paths (!exfil_cursor mod List.length exfil_paths) in
    incr exfil_cursor;
    p
  in
  let backdoors = ref 0 in
  let attack_of cls i () =
    match cls with
    | Trojan ->
      if i = 0 || (i = 1 && cfg.attacks_per_class > 2) then begin
        (* Plant a backdoor binary: fresh object, payload, dir entry. *)
        incr backdoors;
        let nm = Printf.sprintf "backdoor-%d" !backdoors in
        attack_first Trojan;
        truth.attack_ops <- truth.attack_ops + 1;
        match handle t attacker (Rpc.Create { acl = [] }) with
        | Rpc.R_oid fresh ->
          let payload = Bytes.of_string ("#!/bin/evil " ^ String.make 200 '!') in
          attacker_write Trojan fresh payload;
          Hashtbl.replace truth.gt_mut fresh ();
          ignore
            (raw_attack Trojan
               (Rpc.Set_attr
                  { oid = fresh; attr = N.encode_attr (N.fresh_attr N.Freg ~uid:1 ~now:(now ())) })
               ~touches:(fun _ -> gt_write fresh));
          append_slot Trojan (doid "sys/bin") nm fresh;
          truth.created_paths <- ("sys/bin/" ^ nm, fresh) :: truth.created_paths
        | r -> failwith (Format.asprintf "Campaign: backdoor create: %a" Rpc.pp_resp r)
      end
      else begin
        let p = pick_path rng bin_paths in
        mark_attacked p;
        attacker_write Trojan (poid p) (Bytes.of_string ("TROJANED " ^ p ^ String.make 300 '~'))
      end
    | Scrub ->
      let p = pick_path rng log_paths in
      if live t (poid p) then begin
        mark_attacked p;
        if Rng.bool rng then attacker_truncate Scrub (poid p)
        else begin
          (* Delete the log and scrub its directory entry. *)
          ignore
            (raw_attack Scrub (Rpc.Delete { oid = poid p }) ~touches:(fun _ -> gt_write (poid p)));
          clear_slot Scrub (doid "sys/log") (Filename.basename p)
        end
      end
    | Timestomp ->
      let p = pick_path rng bin_paths in
      mark_attacked p;
      if not (List.mem p truth.timestomped) then truth.timestomped <- p :: truth.timestomped;
      (match read_raw t attacker (poid p) with
       | Some (a, _) ->
         gt_read (poid p);
         let back = Int64.sub a.N.mtime 3_600_000_000_000L in
         let forged = { a with N.mtime = back; ctime = back } in
         ignore
           (raw_attack Timestomp
              (Rpc.Set_attr { oid = poid p; attr = N.encode_attr forged })
              ~touches:(fun _ -> gt_write (poid p)))
       | None -> ())
    | Mass_delete ->
      (* A burst of distinct deletions — the rate is what the IDS keys
         on, so the first burst must land at least 3 real deletes. *)
      let candidates = Array.of_list del_paths in
      Rng.shuffle rng candidates;
      let burst = ref (3 + Rng.int rng 2) in
      Array.iter
        (fun p ->
          if !burst > 0 && live t (poid p) then begin
            decr burst;
            attack_first Mass_delete;
            mark_attacked p;
            ignore
              (raw_attack Mass_delete (Rpc.Delete { oid = poid p })
                 ~touches:(fun _ -> gt_write (poid p)));
            clear_slot Mass_delete (doid "sys/data") (Filename.basename p)
          end)
        candidates
    | Exfil ->
      (* Slow exfiltration: two sys/data reads per op (systematically
         walking the dataset — the access pattern the IDS keys on),
         one home-directory read for cover, plus the occasional probe
         at data it cannot reach. *)
      for _ = 1 to 2 do
        let p = next_exfil () in
        ignore
          (raw_attack Exfil
             (Rpc.Read { oid = poid p; off = 0; len = 4096; at = None })
             ~touches:(fun _ -> gt_read (poid p)))
      done;
      (let p = pick_path rng u1_paths in
       ignore
         (raw_attack Exfil
            (Rpc.Read { oid = poid p; off = 0; len = 4096; at = None })
            ~touches:(fun _ -> gt_read (poid p))));
      if i land 1 = 0 then begin
        (* Denied probes: user 2's mailbox dir and an admin command. *)
        attack_first Exfil;
        truth.attack_ops <- truth.attack_ops + 1;
        (match handle t attacker (Rpc.Read { oid = doid "home/u2"; off = 0; len = 512; at = None }) with
         | Rpc.R_error Rpc.Permission_denied ->
           truth.denied_ops <- truth.denied_ops + 1;
           Hashtbl.replace truth.gt_denied (doid "home/u2") ()
         | _ -> failwith "Campaign: home/u2 read should be denied");
        truth.attack_ops <- truth.attack_ops + 1;
        match handle t attacker (Rpc.Flush { until = now () }) with
        | Rpc.R_error Rpc.Permission_denied -> truth.denied_ops <- truth.denied_ops + 1
        | _ -> failwith "Campaign: attacker Flush should be denied"
      end
  in
  let legit_model = Hashtbl.create 64 in
  (* Seed the model from what is actually stored. *)
  List.iter
    (fun p ->
      match read_raw t admin (poid p) with
      | Some (_, d) -> Hashtbl.replace legit_model p d
      | None -> ())
    (u1_paths @ u2_paths @ mail_paths);
  let mail_seq = ref 0 in
  let legit_op i () =
    match Rng.int rng 4 with
    | 0 ->
      let p = pick_path rng u1_paths in
      let d = Bytes.of_string (Printf.sprintf "doc rev %d %s" i (String.make (32 + Rng.int rng 256) 'u')) in
      write_as t.tr_u1 p d;
      Hashtbl.replace legit_model p d
    | 1 ->
      let p = pick_path rng u2_paths in
      let d = Bytes.of_string (Printf.sprintf "secret rev %d %s" i (String.make (32 + Rng.int rng 256) 's')) in
      write_as t.tr_u2 p d;
      Hashtbl.replace legit_model p d
    | 2 ->
      incr mail_seq;
      let p = Printf.sprintf "mail/new-%d" !mail_seq in
      let tr = if Rng.bool rng then t.tr_u1 else t.tr_u2 in
      let d = Bytes.of_string (Printf.sprintf "mail %d" !mail_seq) in
      write_as tr p d;
      Hashtbl.replace legit_model p d
    | _ ->
      let tr, paths = if Rng.bool rng then (t.tr_u1, u1_paths) else (t.tr_u2, u2_paths) in
      via tr (fun () -> ignore (Translator.read_file tr (pick_path rng paths)))
  in
  let ops =
    Array.of_list
      (List.init cfg.legit_ops (fun i -> legit_op i)
      @ List.concat_map
          (fun cls -> List.init cfg.attacks_per_class (fun i -> attack_of cls i))
          (Array.to_list classes))
  in
  Rng.shuffle rng ops;

  (* --- the IDS ------------------------------------------------------ *)
  (* A storage-side detector scanning the audit trail on a period: the
     drive is below the compromised client, so the attacker cannot
     scrub these inputs. Watched (tripwire) objects are the system
     tree; legitimate post-mark traffic never touches it. *)
  let watched_bin = List.map poid bin_paths @ [ doid "sys/bin" ] in
  let watched_log = List.map poid log_paths @ [ doid "sys/log" ] in
  let watched_data = List.map poid data_paths @ [ doid "sys/data" ] in
  (* The read tripwire covers only the system dataset: legitimate
     post-mark traffic lives entirely under home/ and mail/, so any
     principal sweeping distinct sys/data objects is exfiltrating. *)
  let watched_reads = List.map poid exfil_paths in
  let exfil_threshold = min 4 (List.length exfil_paths) in
  let detected : (attack_class, int64) Hashtbl.t = Hashtbl.create 8 in
  let exfil_seen : (int * int, (int64, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
  let last_scan = ref t_mark in
  let scan_period = Int64.of_float (cfg.detect_every_s *. 1e9) in
  let next_scan = ref (Int64.add t_mark scan_period) in
  let is_mut op = List.mem op [ "write"; "append"; "truncate"; "setattr" ] in
  let flag cls at = if not (Hashtbl.mem detected cls) then Hashtbl.replace detected cls at in
  let scan () =
    let t_scan = now () in
    let recs = Target.audit_records ~since:(Int64.add !last_scan 1L) ~until:Int64.max_int t.target in
    let deletes = ref 0 in
    List.iter
      (fun (r : Audit.record) ->
        if r.Audit.at > t_mark && not (r.Audit.user = 0 && r.Audit.client = 0) then begin
          if r.Audit.ok then begin
            if is_mut r.Audit.op && List.mem r.Audit.oid watched_bin then
              if r.Audit.op = "setattr" then flag Timestomp t_scan else flag Trojan t_scan;
            if (is_mut r.Audit.op || r.Audit.op = "delete") && List.mem r.Audit.oid watched_log
            then flag Scrub t_scan;
            if r.Audit.op = "delete" && List.mem r.Audit.oid watched_data then incr deletes;
            if r.Audit.op = "read" && List.mem r.Audit.oid watched_reads then begin
              let key = (r.Audit.user, r.Audit.client) in
              let seen =
                match Hashtbl.find_opt exfil_seen key with
                | Some s -> s
                | None ->
                  let s = Hashtbl.create 16 in
                  Hashtbl.replace exfil_seen key s;
                  s
              in
              Hashtbl.replace seen r.Audit.oid ();
              if Hashtbl.length seen >= exfil_threshold then flag Exfil t_scan
            end
          end
        end)
      recs;
    if !deletes >= 3 then flag Mass_delete t_scan;
    last_scan := t_scan;
    next_scan := Int64.add t_scan scan_period
  in
  Array.iter
    (fun op ->
      jitter ();
      op ();
      if now () >= !next_scan then scan ())
    ops;
  scan ();
  let t_end = now () in

  (* --- forensics ---------------------------------------------------- *)
  let report = Diagnosis.damage_report ~client:attacker.Rpc.client ~since:t_mark ~until:t_end t.target in
  let reported = Hashtbl.create 64 in
  List.iter (fun (a : Diagnosis.activity) -> Hashtbl.replace reported a.Diagnosis.a_oid a) report;
  let fn = ref [] in
  Hashtbl.iter
    (fun oid () ->
      match Hashtbl.find_opt reported oid with
      | Some a when a.Diagnosis.a_writes > 0 || a.Diagnosis.a_deleted || a.Diagnosis.a_created -> ()
      | _ -> fn := Printf.sprintf "mutated oid %Ld missing from damage report" oid :: !fn)
    truth.gt_mut;
  Hashtbl.iter
    (fun oid () ->
      match Hashtbl.find_opt reported oid with
      | Some a when a.Diagnosis.a_reads > 0 -> ()
      | _ -> fn := Printf.sprintf "read oid %Ld missing from damage report" oid :: !fn)
    truth.gt_read;
  Hashtbl.iter
    (fun oid () ->
      match Hashtbl.find_opt reported oid with
      | Some a when a.Diagnosis.a_denied > 0 -> ()
      | _ -> fn := Printf.sprintf "denied probe at oid %Ld missing from damage report" oid :: !fn)
    truth.gt_denied;
  let fp = ref [] in
  Hashtbl.iter
    (fun oid _ ->
      if
        not
          (Hashtbl.mem truth.gt_mut oid || Hashtbl.mem truth.gt_read oid
          || Hashtbl.mem truth.gt_denied oid)
      then fp := Printf.sprintf "oid %Ld attributed to the attacker without ground truth" oid :: !fp)
    reported;
  let denied_probes =
    List.length (Diagnosis.suspicious_denials ~since:t_mark ~until:t_end t.target)
  in

  (* --- recovery ----------------------------------------------------- *)
  let violations = ref [] in
  (match Landmark.verify_since lm mark with
   | Ok () -> ()
   | Error errs -> violations := errs @ !violations);
  let rpcs0 = Target.ops_handled t.target in
  let t_rec0 = now () in
  let rec_ = Recovery.of_target t.target in
  let rec_report =
    match Recovery.restore_tree rec_ ~at:t_mark ~path:"sys" with
    | Ok r -> r
    | Error e ->
      violations := ("recovery failed: " ^ e) :: !violations;
      { Recovery.files_restored = 0; files_removed = 0; dirs_restored = 0; bytes_restored = 0 }
  in
  let rollback_s = Int64.to_float (Int64.sub (now ()) t_rec0) /. 1e9 in
  let recovery_rpcs = Target.ops_handled t.target - rpcs0 in

  (* --- the oracle --------------------------------------------------- *)
  let surviving = ref [] and lost = ref [] in
  Translator.invalidate_caches t.tr_admin;
  Hashtbl.iter
    (fun p ((a0 : N.attr), d0) ->
      match Translator.lookup_path t.tr_admin p with
      | Error _ ->
        if Hashtbl.mem truth.attacked_paths p then
          surviving := (p ^ ": still missing after rollback") :: !surviving
        else violations := (p ^ ": untouched file lost by recovery") :: !violations
      | Ok (fh, a) ->
        (match read_raw t admin fh with
         | Some (_, d) when Bytes.equal d d0 -> ()
         | Some _ ->
           if Hashtbl.mem truth.attacked_paths p then
             surviving := (p ^ ": attacker contents survived rollback") :: !surviving
           else violations := (p ^ ": untouched contents changed by recovery") :: !violations
         | None -> violations := (p ^ ": unreadable after recovery") :: !violations);
        if List.mem p truth.timestomped && a.N.mtime <> a0.N.mtime then
          surviving := (p ^ ": timestomped mtime survived rollback") :: !surviving)
    baseline;
  List.iter
    (fun (p, _) ->
      match via t.tr_admin (fun () -> Translator.lookup_path t.tr_admin p) with
      | Ok _ -> surviving := (p ^ ": backdoor still present after rollback") :: !surviving
      | Error _ -> ())
    truth.created_paths;
  Hashtbl.iter
    (fun p d0 ->
      match via t.tr_admin (fun () -> Translator.read_file t.tr_admin p) with
      | Ok d when Bytes.equal d d0 -> ()
      | Ok _ -> lost := (p ^ ": legitimate contents clobbered") :: !lost
      | Error e -> lost := (p ^ ": legitimate file unreadable: " ^ nfs_err e) :: !lost)
    legit_model;
  (* The audit chain must verify end to end after the whole story —
     campaign, forensics and rollback included. *)
  (match handle t admin (Rpc.Verify_log { from = None }) with
   | Rpc.R_verify v ->
     if not (Chain.clean v) then
       violations :=
         List.map (fun e -> "audit chain: " ^ e) v.Chain.v_errors @ !violations
   | r -> violations := Format.asprintf "verify-log: %a" Rpc.pp_resp r :: !violations);
  (match Landmark.verify_since lm mark with
   | Ok () -> ()
   | Error errs -> violations := errs @ !violations);
  (match Target.fsck t.target with
   | [] -> ()
   | errs -> violations := List.map (fun e -> "fsck: " ^ e) errs @ !violations);
  if cfg.trace then begin
    let audit =
      match t.target with
      | Target.Drive _ ->
        Some
          (List.map
             (fun (r : Audit.record) ->
               { Check.a_at = r.Audit.at; a_op = r.Audit.op; a_oid = r.Audit.oid; a_ok = r.Audit.ok })
             (Target.audit_records t.target))
      | Target.Array _ -> None
    in
    let res =
      match audit with
      | Some audit -> Check.run ~audit ~complete:true (Trace.spans ())
      | None -> Check.run (Trace.spans ())
    in
    if res.Check.violations <> [] then
      violations :=
        List.map (fun v -> "trace checker: " ^ v) res.Check.violations @ !violations;
    Trace.disable ();
    Trace.clear ()
  end;

  let latency cls =
    match (Hashtbl.find_opt detected cls, Hashtbl.find_opt truth.first_attack cls) with
    | Some d, Some f -> Int64.to_float (Int64.sub d f) /. 1e9
    | _ -> -1.0
  in
  {
    o_mark = mark;
    o_classes = List.map (fun c -> (class_name c, latency c)) (Array.to_list classes);
    o_attack_ops = truth.attack_ops;
    o_legit_ops = cfg.legit_ops;
    o_denied_probes = denied_probes;
    o_damage_objects = Hashtbl.length truth.gt_mut;
    o_damage_bytes = truth.damage_bytes;
    o_false_negatives = !fn;
    o_false_positives = !fp;
    o_rollback_s = rollback_s;
    o_recovery_rpcs = recovery_rpcs;
    o_recovery_ops_per_s =
      (if rollback_s > 0.0 then float_of_int recovery_rpcs /. rollback_s else 0.0);
    o_report = rec_report;
    o_surviving = !surviving;
    o_lost = !lost;
    o_violations = !violations;
  }

let pp_outcome ppf o =
  Format.fprintf ppf
    "@[<v>attack ops %d (%d denied probes), damage %d objects / %d bytes@,%a@,rollback %.3fs, %d RPCs (%.0f ops/s), %a@,oracle: %d surviving, %d lost, %d FN, %d FP, %d violations@]"
    o.o_attack_ops o.o_denied_probes o.o_damage_objects o.o_damage_bytes
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (c, l) ->
         if l >= 0.0 then Format.fprintf ppf "%s detected in %.2fs" c l
         else Format.fprintf ppf "%s UNDETECTED" c))
    o.o_classes o.o_rollback_s o.o_recovery_rpcs o.o_recovery_ops_per_s Recovery.pp_report
    o.o_report
    (List.length o.o_surviving)
    (List.length o.o_lost)
    (List.length o.o_false_negatives)
    (List.length o.o_false_positives)
    (List.length o.o_violations)

let problems o =
  List.concat
    [
      List.filter_map
        (fun (c, l) -> if l < 0.0 then Some (c ^ ": undetected") else None)
        o.o_classes;
      o.o_surviving;
      o.o_lost;
      o.o_false_negatives;
      o.o_false_positives;
      o.o_violations;
    ]
