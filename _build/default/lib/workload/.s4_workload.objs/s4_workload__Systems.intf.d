lib/workload/systems.mli: S4 S4_disk S4_nfs S4_util
