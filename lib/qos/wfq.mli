(** Weighted fair queueing over per-client work queues.

    The scheduler implements classic virtual-time WFQ: each enqueued
    item carries a cost (e.g. estimated bytes or request count) and the
    client it belongs to; the item's finish tag is
    [max (virtual_time, last_finish client) + cost / weight client],
    and {!pop} always returns the pending item with the smallest finish
    tag. A client with weight [w] therefore receives a [w / sum-of-active-
    weights] share of service in cost units, regardless of how fast it
    floods its own queue — one hog cannot starve the rest.

    Weights are looked up through a callback at enqueue time, so a
    dynamic penalty source (the drive's history-pool throttle, say) can
    lower a client's weight while it misbehaves and restore it as the
    penalty decays. The structure is not thread-safe; callers serialize
    access (the network server holds its own lock). *)

type 'a t

val create : ?weight_of:(int -> float) -> unit -> 'a t
(** [create ~weight_of ()] makes an empty scheduler. [weight_of client]
    is sampled each time that client enqueues; values are clamped to a
    small positive floor so a fully-penalized client still drains.
    Default weight is [1.0] for every client. *)

val enqueue : 'a t -> client:int -> cost:float -> 'a -> unit
(** Add an item for [client]. [cost] must be positive; it is clamped to
    a minimum of [1.0] so zero-cost floods cannot capture the head of
    the queue. Items from one client stay FIFO relative to each other. *)

val pop : 'a t -> 'a option
(** Remove and return the pending item with the smallest finish tag, or
    [None] when the scheduler is empty. Ties break on enqueue order, so
    equal-weight clients interleave deterministically. *)

val peek_client : 'a t -> int option
(** Client id of the item {!pop} would return, without removing it. *)

val length : 'a t -> int
(** Total items pending across every client. *)

val pending : 'a t -> client:int -> int
(** Items pending for one client. *)

val virtual_time : 'a t -> float
(** Current virtual time (monotone; advances as work is served). *)

val served : 'a t -> client:int -> float
(** Total cost served to [client] since creation — the fairness metric
    benchmarks assert on. *)

val clients : 'a t -> int list
(** Clients that have ever enqueued, ascending. *)
