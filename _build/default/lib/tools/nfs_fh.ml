type fh = int64
