(* s4cli: operate a self-securing drive stored in a host-file image.

   The drive, its history pool and audit log live inside the image, so
   the security properties can be explored interactively:

     s4cli format -i disk.img --size-mb 64
     s4cli write  -i disk.img /etc/passwd --data "root:x:0:0"
     s4cli write  -i disk.img /etc/passwd --data "TAMPERED"
     s4cli log    -i disk.img
     s4cli versions -i disk.img /etc/passwd
     s4cli cat    -i disk.img /etc/passwd --at <ns>
     s4cli restore -i disk.img /etc --at <ns>
     s4cli fsck   -i disk.img

   With --connect HOST:PORT the data-path commands (write, cat, ls,
   rm, log, metrics) run against a live s4d daemon over the wire
   protocol instead of opening a local image; history access (--at,
   versions, restore, fsck, info, trace) needs the image. *)

module Simclock = S4_util.Simclock
module Geometry = S4_disk.Geometry
module Sim_disk = S4_disk.Sim_disk
module Drive = S4.Drive
module Rpc = S4.Rpc
module Audit = S4.Audit
module N = S4_nfs.Nfs_types
module Translator = S4_nfs.Translator
module History = S4_tools.History
module Recovery = S4_tools.Recovery
module Log = S4_seglog.Log
module Trace = S4_obs.Trace
module Metrics = S4_obs.Metrics
module Check = S4_obs.Check
module Netclient = S4_net.Client
module Nettransport = S4_net.Transport
module Wire = S4_net.Wire
module Chain = S4_integrity.Chain

open Cmdliner

let image_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "i"; "image" ] ~docv:"FILE" ~doc:"Disk image file.")

let image_opt_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "i"; "image" ] ~docv:"FILE" ~doc:"Disk image file.")

let connect_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv:"HOST:PORT"
        ~doc:"Operate on a running s4d daemon instead of a local image.")

let path_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"PATH")
let paths_arg = Arg.(non_empty & pos_all string [] & info [] ~docv:"PATH...")

let at_arg =
  Arg.(
    value
    & opt (some int64) None
    & info [ "at" ] ~docv:"NS"
        ~doc:"Simulated time (ns) for history-pool access; see $(b,versions).")

let user_arg =
  Arg.(value & opt int 1 & info [ "user" ] ~docv:"UID" ~doc:"Acting user id (admin tools ignore this).")

type session = {
  clock : Simclock.t;
  disk : Sim_disk.t;
  drive : Drive.t;
  tr : Translator.t;
}

let open_session image user =
  let clock, disk = S4_tools.Disk_image.load_any image in
  let drive = Drive.attach disk in
  let tr = Translator.mount ~cred:(Rpc.user_cred ~user ~client:1) (Translator.Local drive) in
  (* Each CLI invocation is a new instant. *)
  Simclock.advance clock (Simclock.of_seconds 1.0);
  { clock; disk; drive; tr }

let close_session image s =
  (match Drive.handle s.drive Rpc.admin_cred Rpc.Sync with Rpc.R_unit -> () | _ -> ());
  Audit.flush (Drive.audit s.drive);
  Log.sync (Drive.log s.drive);
  S4_tools.Disk_image.save_any image s.clock s.disk;
  Sim_disk.close s.disk

(* --- remote sessions (s4cli --connect) -------------------------------- *)

type target = T_local of string | T_remote of string * int

let parse_hostport hp =
  match String.rindex_opt hp ':' with
  | Some i -> (
    let host = String.sub hp 0 i in
    let p = String.sub hp (i + 1) (String.length hp - i - 1) in
    match int_of_string_opt p with
    | Some port when port > 0 && port < 65536 -> (host, port)
    | _ ->
      prerr_endline ("error: bad port in " ^ hp);
      exit 1)
  | None ->
    prerr_endline ("error: expected HOST:PORT, got " ^ hp);
    exit 1

let target image connect =
  match (connect, image) with
  | Some hp, _ ->
    let host, port = parse_hostport hp in
    T_remote (host, port)
  | None, Some image -> T_local image
  | None, None ->
    prerr_endline "error: need --image FILE or --connect HOST:PORT";
    exit 1

type rsession = { rclient : Netclient.t; rtr : Translator.t }

let open_remote ~user host port =
  let rclient = Netclient.connect (Nettransport.tcp ~host ~port) in
  (match Netclient.capacity rclient with
  | _ when Netclient.identity rclient > 0 -> ()
  | _ ->
    Printf.eprintf "error: cannot reach s4d at %s:%d\n" host port;
    exit 1);
  let rclock = Simclock.create () in
  Simclock.set rclock (Netclient.server_now rclient);
  let backend = Netclient.backend ~clock:rclock ~keep_data:true rclient in
  let rtr = Translator.mount ~cred:(Rpc.user_cred ~user ~client:1) (Translator.Backend backend) in
  { rclient; rtr }

let close_remote r = Netclient.close r.rclient

let or_die = function
  | Ok v -> v
  | Error m ->
    prerr_endline ("error: " ^ m);
    exit 1

let nfs_die = function
  | Error e ->
    Format.eprintf "error: %a@." N.pp_error e;
    exit 1
  | Ok v -> v

(* --- commands --------------------------------------------------------- *)

let cmd_format =
  let size_mb = Arg.(value & opt int 64 & info [ "size-mb" ] ~docv:"MB") in
  let window_days =
    Arg.(value & opt float 7.0 & info [ "window-days" ] ~doc:"Guaranteed detection window.")
  in
  let file_backed =
    Arg.(
      value & flag
      & info [ "file-backed" ]
          ~doc:"Back sectors with the host file itself (pwrite + fsync barriers) instead of a \
                serialized image: acknowledged writes then survive kill -9 of the daemon.")
  in
  let run image size_mb window_days file_backed =
    let geometry = Geometry.with_capacity Geometry.cheetah_9gb ~bytes:(size_mb * 1024 * 1024) in
    let clock, disk =
      if file_backed then
        let disk = Sim_disk.of_file (S4_disk.File_disk.create ~path:image geometry) in
        (Sim_disk.clock disk, disk)
      else
        let clock = Simclock.create () in
        (clock, Sim_disk.create ~geometry clock)
    in
    let config =
      { Drive.default_config with Drive.window = Simclock.of_seconds (window_days *. 86400.0) }
    in
    let drive = Drive.format ~config disk in
    let tr = Translator.mount (Translator.Local drive) in
    ignore tr;
    Audit.flush (Drive.audit drive);
    Log.sync (Drive.log drive);
    S4_tools.Disk_image.save_any image clock disk;
    Sim_disk.close disk;
    Printf.printf "formatted %s: %d MB self-securing drive, %.1f-day window%s\n" image size_mb
      window_days
      (if file_backed then " (file-backed)" else "")
  in
  Cmd.v (Cmd.info "format" ~doc:"Create a fresh self-securing drive image.")
    Term.(const run $ image_arg $ size_mb $ window_days $ file_backed)

let cmd_write =
  let data = Arg.(value & opt (some string) None & info [ "data" ] ~docv:"STRING") in
  (* All targets ride ONE vectored submission: n files, one
     group-commit barrier. Results are positional. *)
  let write_all tr paths contents ~announce =
    let failed = ref false in
    List.iter2
      (fun path -> function
        | Ok _ -> announce path
        | Error e ->
          Format.eprintf "error: %s: %a@." path N.pp_error e;
          failed := true)
      paths
      (Translator.write_files tr (List.map (fun p -> (p, contents)) paths));
    !failed
  in
  let run image connect user paths data =
    let contents =
      match data with
      | Some d -> Bytes.of_string d
      | None -> Bytes.of_string (In_channel.input_all In_channel.stdin)
    in
    let failed =
      match target image connect with
      | T_local image ->
        let s = open_session image user in
        let failed =
          write_all s.tr paths contents ~announce:(fun path ->
              Printf.printf "wrote %d bytes to %s at t=%Ld\n" (Bytes.length contents) path
                (Simclock.now s.clock))
        in
        close_session image s;
        failed
      | T_remote (host, port) ->
        let r = open_remote ~user host port in
        let failed =
          write_all r.rtr paths contents ~announce:(fun path ->
              Printf.printf "wrote %d bytes to %s via %s:%d\n" (Bytes.length contents) path
                host port)
        in
        close_remote r;
        failed
    in
    if failed then exit 1
  in
  Cmd.v
    (Cmd.info "write"
       ~doc:
         "Write one or more files (creating parents) as a single batched submission; content \
          from --data or stdin.")
    Term.(const run $ image_opt_arg $ connect_arg $ user_arg $ paths_arg $ data)

let cmd_cat =
  let run image connect user path at =
    match target image connect with
    | T_local image ->
      let s = open_session image user in
      (match at with
       | None -> print_bytes (nfs_die (Translator.read_file s.tr path))
       | Some at ->
         let h = History.create s.drive in
         print_bytes (or_die (History.cat_path h ~at path)));
      print_newline ();
      close_session image s
    | T_remote (host, port) ->
      if at <> None then begin
        prerr_endline "error: --at needs the history pool; run against the image";
        exit 1
      end;
      let r = open_remote ~user host port in
      print_bytes (nfs_die (Translator.read_file r.rtr path));
      print_newline ();
      close_remote r
  in
  Cmd.v
    (Cmd.info "cat" ~doc:"Print a file's contents, optionally as of a past instant (admin).")
    Term.(const run $ image_opt_arg $ connect_arg $ user_arg $ path_arg $ at_arg)

let print_dirent (e : N.dirent) (a : N.attr) =
  Printf.printf "%c %8d  %-30s oid=%Ld\n"
    (match a.N.ftype with N.Fdir -> 'd' | N.Freg -> '-' | N.Flnk -> 'l')
    a.N.size e.N.name e.N.fh

let cmd_ls =
  let run image connect user path at =
    match target image connect with
    | T_local image ->
      let s = open_session image user in
      let h = History.create s.drive in
      let dir = or_die (History.resolve h ?at path) in
      let entries = or_die (History.ls h ?at dir) in
      List.iter (fun (e, a) -> print_dirent e a) entries;
      close_session image s
    | T_remote (host, port) ->
      if at <> None then begin
        prerr_endline "error: --at needs the history pool; run against the image";
        exit 1
      end;
      let r = open_remote ~user host port in
      let dir, _ = nfs_die (Translator.lookup_path r.rtr path) in
      (match Translator.handle r.rtr (N.Readdir dir) with
       | N.R_entries entries ->
         List.iter
           (fun (e : N.dirent) ->
             match Translator.handle r.rtr (N.Getattr e.N.fh) with
             | N.R_attr a -> print_dirent e a
             | _ -> ())
           entries
       | N.R_error e ->
         Format.eprintf "error: %a@." N.pp_error e;
         exit 1
       | _ -> ());
      close_remote r
  in
  Cmd.v
    (Cmd.info "ls" ~doc:"List a directory, optionally as of a past instant.")
    Term.(const run $ image_opt_arg $ connect_arg $ user_arg $ path_arg $ at_arg)

let cmd_rm =
  (* One vectored submission for the whole set: n removals share a
     single group-commit barrier. *)
  let rm_via tr paths =
    let failed = ref false in
    List.iter2
      (fun path -> function
        | Ok () ->
          Printf.printf "removed %s (the versions remain in the history pool)\n" path
        | Error e ->
          Format.eprintf "error: %s: %a@." path N.pp_error e;
          failed := true)
      paths
      (Translator.remove_files tr paths);
    !failed
  in
  let run image connect user paths =
    let failed =
      match target image connect with
      | T_local image ->
        let s = open_session image user in
        let failed = rm_via s.tr paths in
        close_session image s;
        failed
      | T_remote (host, port) ->
        let r = open_remote ~user host port in
        let failed = rm_via r.rtr paths in
        close_remote r;
        failed
    in
    if failed then exit 1
  in
  Cmd.v (Cmd.info "rm" ~doc:"Remove one or more files as a single batched submission.")
    Term.(const run $ image_opt_arg $ connect_arg $ user_arg $ paths_arg)

let cmd_versions =
  let run image path =
    let s = open_session image 0 in
    let h = History.create s.drive in
    let fh = or_die (History.resolve h path) in
    let entries = History.versions_of h fh in
    Printf.printf "%d retained journal entries for %s (oid %Ld):\n" (List.length entries) path fh;
    List.iter (fun e -> Format.printf "  %a@." S4_store.Entry.pp e) entries;
    Printf.printf "version instants (pass to --at):\n";
    List.iter (fun t -> Printf.printf "  %Ld\n" t) (History.version_times h fh);
    close_session image s
  in
  Cmd.v
    (Cmd.info "versions" ~doc:"Show the retained version history of a file (admin).")
    Term.(const run $ image_arg $ path_arg)

let print_audit = function
  | Rpc.R_audit records ->
    Printf.printf "%d audit records:\n" (List.length records);
    List.iter
      (fun (r : Audit.record) ->
        Printf.printf "  t=%-14Ld user=%-3d client=%-3d %-12s oid=%-4Ld %s%s\n" r.Audit.at
          r.Audit.user r.Audit.client r.Audit.op r.Audit.oid r.Audit.info
          (if r.Audit.ok then "" else "  DENIED"))
      records
  | r -> Format.eprintf "error: %a@." Rpc.pp_resp r

let cmd_log =
  let read_audit = Rpc.Read_audit { since = 0L; until = Int64.max_int } in
  let run image connect =
    match target image connect with
    | T_local image ->
      let s = open_session image 0 in
      print_audit (Drive.handle s.drive Rpc.admin_cred read_audit);
      close_session image s
    | T_remote (host, port) ->
      let r = open_remote ~user:0 host port in
      print_audit (Netclient.handle r.rclient Rpc.admin_cred read_audit);
      close_remote r
  in
  Cmd.v (Cmd.info "log" ~doc:"Dump the drive's audit log (admin).")
    Term.(const run $ image_opt_arg $ connect_arg)

let cmd_restore =
  let at_req =
    Arg.(required & opt (some int64) None & info [ "at" ] ~docv:"NS" ~doc:"Restore point.")
  in
  let run image path at =
    let s = open_session image 0 in
    let rec_ = Recovery.create s.drive in
    let report = or_die (Recovery.restore_tree rec_ ~at ~path) in
    Format.printf "%a@." Recovery.pp_report report;
    close_session image s
  in
  Cmd.v
    (Cmd.info "restore" ~doc:"Restore a subtree to a past instant (admin; copy-forward).")
    Term.(const run $ image_arg $ path_arg $ at_req)

let cmd_landmark =
  let take_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "take" ] ~docv:"NAME"
          ~doc:"Take a new named mark (quiesce, seal the audit chain, record its head).")
  in
  let run image take =
    let s = open_session image 0 in
    let lm =
      try S4_tools.Landmark.create s.drive
      with Failure m ->
        prerr_endline ("error: " ^ m);
        close_session image s;
        exit 1
    in
    (match take with
     | Some name ->
       let m = or_die (S4_tools.Landmark.mark lm ~name) in
       Format.printf "took %a@." S4_tools.Landmark.pp_mark m
     | None ->
       let marks = S4_tools.Landmark.marks lm in
       Printf.printf "%d marks:\n" (List.length marks);
       List.iter (fun m -> Format.printf "  %a@." S4_tools.Landmark.pp_mark m) marks;
       let lms = S4_tools.Landmark.list lm in
       Printf.printf "%d per-object landmarks:\n" (List.length lms);
       List.iter
         (fun (l : S4_tools.Landmark.landmark) ->
           Printf.printf "  %S oid=%Ld at=%Ld (%d bytes archived in oid %Ld)\n" l.l_name
             l.l_source l.l_taken_at l.l_bytes l.l_object)
         lms);
    close_session image s
  in
  Cmd.v
    (Cmd.info "landmark"
       ~doc:
         "List named rollback marks (and per-object landmarks), or take a new one with --take \
          (admin). A mark records the barrier instant and the sealed audit-chain head, so a later \
          $(b,recover) can prove the history it rolls back through is untampered.")
    Term.(const run $ image_arg $ take_arg)

let cmd_recover =
  let to_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "to" ] ~docv:"NAME" ~doc:"Mark to roll back to (see $(b,landmark)).")
  in
  let path_opt =
    Arg.(value & opt string "" & info [ "path" ] ~docv:"PATH" ~doc:"Subtree to restore (default: whole tree).")
  in
  let run image name path =
    let s = open_session image 0 in
    let lm =
      try S4_tools.Landmark.create s.drive
      with Failure m ->
        prerr_endline ("error: " ^ m);
        close_session image s;
        exit 1
    in
    (match S4_tools.Landmark.find_mark lm name with
     | None ->
       prerr_endline ("error: no mark named " ^ name);
       close_session image s;
       exit 1
     | Some m ->
       (match S4_tools.Landmark.verify_since lm m with
        | Ok () -> Printf.printf "audit chain since mark %S verifies\n" name
        | Error errs ->
          List.iter (fun e -> prerr_endline ("error: " ^ e)) errs;
          close_session image s;
          exit 1);
       let rec_ = Recovery.create s.drive in
       let report = or_die (Recovery.restore_tree rec_ ~at:m.S4_tools.Landmark.m_at ~path) in
       Format.printf "rolled back to %a@.%a@." S4_tools.Landmark.pp_mark m Recovery.pp_report
         report);
    close_session image s
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Roll a subtree back to a named mark (admin; copy-forward). Verifies the audit chain \
          from the mark's recorded head first — a rollback through tampered history is refused.")
    Term.(const run $ image_arg $ to_arg $ path_opt)

let cmd_fsck =
  let run image =
    let s = open_session image 0 in
    (match Drive.fsck s.drive with
     | [] -> print_endline "clean: all cross-layer invariants hold"
     | errs ->
       List.iter print_endline errs;
       exit 1);
    close_session image s
  in
  Cmd.v (Cmd.info "fsck" ~doc:"Check drive invariants.") Term.(const run $ image_arg)

let cmd_info =
  let run image =
    let s = open_session image 0 in
    Format.printf "%a@." Drive.pp_stats s.drive;
    Format.printf "%a@." Sim_disk.pp_stats s.disk;
    Printf.printf "simulated time: %Ld ns (%.2f days)\n" (Simclock.now s.clock)
      (Simclock.seconds s.clock /. 86400.0);
    close_session image s
  in
  Cmd.v (Cmd.info "info" ~doc:"Show drive statistics.") Term.(const run $ image_arg)

let cmd_trace =
  let run image user path at =
    let s = open_session image user in
    Metrics.reset ();
    Trace.clear ();
    Trace.enable ();
    (match at with
     | None -> ignore (nfs_die (Translator.read_file s.tr path))
     | Some at ->
       let h = History.create s.drive in
       ignore (or_die (History.cat_path h ~at path)));
    Trace.disable ();
    let spans = Trace.spans () in
    Format.printf "%a@." Trace.pp_tree spans;
    let res = Check.run spans in
    (match res.Check.violations with
     | [] -> Printf.printf "checker: %d spans, no violations\n" res.Check.spans_checked
     | vs ->
       List.iter (fun v -> Printf.printf "checker VIOLATION: %s\n" v) vs;
       exit 1);
    close_session image s
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Read a file with the span tracer on and print the nested span tree across all layers.")
    Term.(const run $ image_arg $ user_arg $ path_arg $ at_arg)

(* Walk the whole tree — stat everything, read every file — so the
   registry shows per-RPC-kind latency for the drive's contents. *)
let rec metrics_walk tr fh =
  match Translator.handle tr (N.Readdir fh) with
  | N.R_entries entries ->
    List.iter
      (fun (e : N.dirent) ->
        match Translator.handle tr (N.Getattr e.N.fh) with
        | N.R_attr a ->
          (match a.N.ftype with
           | N.Fdir -> metrics_walk tr e.N.fh
           | N.Freg | N.Flnk ->
             ignore
               (Translator.handle tr (N.Read { fh = e.N.fh; off = 0; len = max a.N.size 1 })))
        | _ -> ())
      entries
  | _ -> ()

let cmd_metrics =
  let run image connect user =
    match target image connect with
    | T_local image ->
      let s = open_session image user in
      Metrics.reset ();
      Wire.ensure_metrics ();
      Trace.clear ();
      Trace.enable ();
      metrics_walk s.tr (Translator.root s.tr);
      Trace.disable ();
      (match Drive.throttle s.drive with
       | Some th -> S4.Throttle.export_metrics th
       | None -> ());
      Format.printf "%a" Metrics.pp ();
      Printf.printf "(%d spans recorded)\n" (Trace.count ());
      close_session image s
    | T_remote (host, port) ->
      let r = open_remote ~user host port in
      Metrics.reset ();
      Wire.ensure_metrics ();
      metrics_walk r.rtr (Translator.root r.rtr);
      Format.printf "%a" Metrics.pp ();
      Printf.printf "(client: %d retries, %d reconnects)\n" (Netclient.retries r.rclient)
        (Netclient.reconnects r.rclient);
      close_remote r
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Walk the drive with tracing on and print the metrics registry (counters + latency histograms).")
    Term.(const run $ image_opt_arg $ connect_arg $ user_arg)

(* --state FILE holds the last verified sealed head, one line:
   "epoch records hex(sha256)". It is the admin's off-drive trust
   anchor — with it, verify-log resumes incrementally and detects
   rollback (a drive restored to before the anchor) and forks (a
   rewritten history that no longer contains it). *)
let hash_of_hex s =
  let digit c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  if String.length s <> 2 * Chain.hash_len then None
  else
    let b = Bytes.create Chain.hash_len in
    let ok = ref true in
    for i = 0 to Chain.hash_len - 1 do
      match (digit s.[2 * i], digit s.[(2 * i) + 1]) with
      | Some hi, Some lo -> Bytes.set b i (Char.chr ((hi lsl 4) lor lo))
      | _ -> ok := false
    done;
    if !ok then Some (Bytes.to_string b) else None

let read_state file =
  if not (Sys.file_exists file) then None
  else
    match In_channel.with_open_text file In_channel.input_all with
    | s -> (
      match String.split_on_char ' ' (String.trim s) with
      | [ e; r; hex ] -> (
        match (int_of_string_opt e, int_of_string_opt r, hash_of_hex hex) with
        | Some epoch, Some records, Some hash -> Some { Chain.epoch; records; hash }
        | _ ->
          prerr_endline ("error: unparsable trust anchor in " ^ file);
          exit 1)
      | _ ->
        prerr_endline ("error: unparsable trust anchor in " ^ file);
        exit 1)
    | exception Sys_error m ->
      prerr_endline ("error: " ^ m);
      exit 1

let write_state file (h : Chain.head) =
  Out_channel.with_open_text file (fun oc ->
      Printf.fprintf oc "%d %d %s\n" h.Chain.epoch h.Chain.records
        (S4_util.Sha256.to_hex h.Chain.hash))

let cmd_verify_log =
  let state_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "state" ] ~docv:"FILE"
          ~doc:
            "Trust-anchor file. If it exists, verification resumes from the head it records \
             (detecting rollback and rewritten history); on a clean verify it is updated to the \
             newest sealed head.")
  in
  let lenient_arg =
    Arg.(
      value & flag
      & info [ "lenient" ]
          ~doc:
            "Accept a torn unsealed tail (the state a crash legitimately leaves). Local images \
             only.")
  in
  let finish ~state ~clean (newest : Chain.head option) =
    (match (state, clean, newest) with
     | Some file, true, Some h ->
       write_state file h;
       Printf.printf "trust anchor %s updated: %s\n" file
         (Format.asprintf "%a" Chain.pp_head h)
     | Some _, true, None ->
       print_endline "trust anchor left unchanged (nothing sealed to anchor)"
     | Some _, false, _ -> print_endline "trust anchor left unchanged (verification failed)"
     | None, _, _ -> ());
    if not clean then exit 1
  in
  let run image connect state lenient =
    match target image connect with
    | T_local image ->
      let s = open_session image 0 in
      let from = Option.join (Option.map read_state state) in
      let res = Audit.verify ?from ~lenient_tail:lenient (Drive.audit s.drive) in
      Format.printf "%a@." Chain.pp_result res;
      (* Seal whatever the session itself appended, so the anchor we
         save covers the newest sealed epoch. *)
      (match Drive.handle s.drive Rpc.admin_cred Rpc.Sync with Rpc.R_unit -> () | _ -> ());
      let newest = Audit.sealed_head (Drive.audit s.drive) in
      let clean = Chain.clean res in
      close_session image s;
      finish ~state ~clean (if newest.Chain.records = 0 then None else Some newest)
    | T_remote (host, port) ->
      if lenient then begin
        prerr_endline "error: --lenient needs the image; a live drive's chain must be whole";
        exit 1
      end;
      let r = open_remote ~user:0 host port in
      let from = Option.join (Option.map read_state state) in
      (match Netclient.handle r.rclient Rpc.admin_cred (Rpc.Verify_log { from }) with
       | Rpc.R_verify res ->
         Format.printf "%a@." Chain.pp_result res;
         close_remote r;
         (* Only a fully sealed head is a safe anchor: an unsealed
            tail may legitimately vanish in a crash. *)
         let newest =
           match res.Chain.v_head with Some h when res.Chain.v_tail = 0 -> Some h | _ -> None
         in
         finish ~state ~clean:(Chain.clean res) newest
       | r' ->
         Format.eprintf "error: %a@." Rpc.pp_resp r';
         close_remote r;
         exit 1)
  in
  Cmd.v
    (Cmd.info "verify-log"
       ~doc:
         "Re-walk the audit log's tamper-evident hash chain (admin). Detects rewritten, dropped, \
          reordered and forked history; with --state, resumes from and maintains an off-drive \
          trust anchor.")
    Term.(const run $ image_opt_arg $ connect_arg $ state_arg $ lenient_arg)

let () =
  let doc = "operate a simulated self-securing (S4) storage drive" in
  let info = Cmd.info "s4cli" ~version:"1.0" ~doc in
  exit (Cmd.eval (Cmd.group info
    [ cmd_format; cmd_write; cmd_cat; cmd_ls; cmd_rm; cmd_versions; cmd_log; cmd_restore;
      cmd_landmark; cmd_recover; cmd_fsck; cmd_verify_log; cmd_info; cmd_trace; cmd_metrics ]))
