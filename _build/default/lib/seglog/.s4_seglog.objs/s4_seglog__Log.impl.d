lib/seglog/log.ml: Array Bytes Char Format Hashtbl Jblock List Option Printf S4_disk Stdlib Summary Tag
