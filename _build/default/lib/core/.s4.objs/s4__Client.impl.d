lib/core/client.ml: Drive Format Rpc S4_disk
