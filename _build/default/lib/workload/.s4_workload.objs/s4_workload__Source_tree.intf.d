lib/workload/source_tree.mli: Bytes S4_util
