examples/capacity_planning.ml: Float Format List Printf S4_analysis S4_workload
