module Bcodec = S4_util.Bcodec
module Sha256 = S4_util.Sha256

(* A tamper-evident hash chain over the audit trail. Each audit record
   extends a running SHA-256 head:

     head_{i+1} = SHA256(head_i || canonical_encoding(record_i))

   and at every durability barrier the current head is sealed into an
   epoch record written in the same log flush as the records it covers
   (the adaptive-crash-attack construction: a crash, or an attacker
   faking one, can only truncate the unsealed tail — it cannot fork a
   sealed prefix without breaking the hash).

   Verification is a pure state machine over [item]s so it can be
   exercised by qcheck without a log underneath. *)

type head = { epoch : int; records : int; hash : string }

let hash_len = 32
let genesis_hash = Sha256.digest_string "s4-audit-chain-genesis-v1"
let genesis = { epoch = 0; records = 0; hash = genesis_hash }

let extend prev canon =
  let ctx = Sha256.init () in
  Sha256.feed_string ctx prev;
  Sha256.feed ctx canon;
  Sha256.finish ctx

let extend_all prev canons = List.fold_left extend prev canons

let equal_head a b = a.epoch = b.epoch && a.records = b.records && String.equal a.hash b.hash

let short_hex h =
  let hex = Sha256.to_hex h in
  if String.length hex > 12 then String.sub hex 0 12 else hex

let pp_head ppf h =
  Format.fprintf ppf "epoch %d, %d records, %s" h.epoch h.records (short_hex h.hash)

let write_head w h =
  Bcodec.w_int w h.epoch;
  Bcodec.w_int w h.records;
  if String.length h.hash <> hash_len then invalid_arg "Chain.write_head: bad hash length";
  Bcodec.w_raw w (Bytes.of_string h.hash)

let read_head r =
  let epoch = Bcodec.r_int r in
  let records = Bcodec.r_int r in
  let hash = Bytes.to_string (Bcodec.r_raw r hash_len) in
  if epoch < 0 || records < 0 then raise (Bcodec.Decode_error "Chain.read_head: negative field");
  { epoch; records; hash }

(* ------------------------------------------------------------------ *)
(* Verification                                                        *)

type block = { b_start : int; b_prior : string; b_canons : Bytes.t list }
type seal = { s_head : head; s_at : int64 }

type item =
  | Block of block
      (** A persisted audit block: global index of its first record,
          the chain head before that record, and the canonical
          encodings of its records in order. *)
  | Seal of seal  (** An epoch seal: the head the chain claimed at a barrier. *)
  | Bad of string  (** A log block that should have decoded but did not. *)

type verify_result = {
  v_records : int;  (** records covered by the chain walk *)
  v_sealed : int;  (** records protected by an intact seal *)
  v_epochs : int;  (** seal epochs seen *)
  v_head : head option;  (** head after the newest record, if any walked *)
  v_tail : int;  (** records past the newest intact seal (legit crash loss zone) *)
  v_pruned : int;  (** records before the earliest surviving block *)
  v_first_bad : int;  (** global index of the first provably bad record; -1 = none *)
  v_errors : string list;
}

let clean r = r.v_errors = []

let pp_result ppf r =
  Format.fprintf ppf "%d records (%d sealed over %d epochs, %d tail, %d pruned)%s" r.v_records
    r.v_sealed r.v_epochs r.v_tail r.v_pruned
    (match r.v_errors with
     | [] -> ": chain intact"
     | es -> Printf.sprintf ": %d violations" (List.length es));
  List.iter (fun e -> Format.fprintf ppf "@.  %s" e) r.v_errors

(* Walk the blocks in record order, tracking the head at every index a
   seal (or the caller's anchor) wants to inspect. Anomalies adopt the
   block's own declared prior and continue, so one tampered region
   yields one localized error instead of cascading mismatches. *)
let verify ?from ?(lenient_tail = false) items =
  let errors = ref [] in
  let first_bad = ref (-1) in
  let err ?at fmt =
    Format.kasprintf
      (fun m ->
        errors := m :: !errors;
        match at with
        | Some i when !first_bad = -1 || i < !first_bad -> first_bad := i
        | _ -> ())
      fmt
  in
  let blocks =
    List.filter_map (function Block b -> Some b | _ -> None) items
    |> List.sort (fun a b -> compare a.b_start b.b_start)
  in
  let seals =
    List.filter_map (function Seal s -> Some s | _ -> None) items
    |> List.sort (fun a b -> compare a.s_head.epoch b.s_head.epoch)
  in
  let bads = List.filter_map (function Bad reason -> Some reason | _ -> None) items in
  (* Indexes whose head a later check needs. *)
  let wanted = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace wanted s.s_head.records ()) seals;
  (match from with Some f -> Hashtbl.replace wanted f.records () | None -> ());
  let heads_at = Hashtbl.create 16 in
  let note idx hash = if Hashtbl.mem wanted idx then Hashtbl.replace heads_at idx hash in
  let start = match blocks with [] -> 0 | b :: _ -> b.b_start in
  let pruned = start in
  let idx = ref start in
  let hash = ref (match blocks with [] -> genesis_hash | b :: _ -> b.b_prior) in
  note !idx !hash;
  List.iter
    (fun b ->
      let process =
        if b.b_start > !idx then begin
          err ~at:!idx "chain: records [%d, %d) missing from the log" !idx b.b_start;
          idx := b.b_start;
          hash := b.b_prior;
          true
        end
        else if b.b_start < !idx then begin
          err ~at:b.b_start "chain: audit block at record %d overlaps already-walked records"
            b.b_start;
          false
        end
        else begin
          if not (String.equal b.b_prior !hash) then begin
            err ~at:b.b_start "chain: prior head of block at record %d does not extend the chain"
              b.b_start;
            hash := b.b_prior
          end;
          true
        end
      in
      if process then
        List.iter
          (fun canon ->
            hash := extend !hash canon;
            incr idx;
            note !idx !hash)
          b.b_canons)
    blocks;
  let total = !idx in
  (* Seals: epochs strictly increase, record counts never regress, and
     each intact seal's hash must match the walked head at its index.
     A seal claiming records the log no longer holds is tampering even
     under a lenient tail: within one barrier the seal is written after
     the records it covers, so a torn flush loses the seal first. *)
  let sealed = ref 0 in
  let last_epoch = ref 0 in
  let epochs = ref 0 in
  List.iter
    (fun s ->
      let h = s.s_head in
      incr epochs;
      if h.epoch <= !last_epoch then
        err "chain: seal epoch %d does not increase (fork or replayed seal)" h.epoch
      else last_epoch := h.epoch;
      if h.records < !sealed then
        err "chain: seal epoch %d covers fewer records (%d) than an earlier seal (%d)" h.epoch
          h.records !sealed
      else if h.records > total then
        err ~at:total
          "chain: seal epoch %d covers %d records but only %d survive (sealed region truncated)"
          h.epoch h.records total
      else begin
        (if h.records >= start then
           match Hashtbl.find_opt heads_at h.records with
           | Some walked when not (String.equal walked h.hash) ->
             err ~at:(max !sealed start)
               "chain: seal epoch %d hash mismatch at record %d (records [%d, %d) tampered)"
               h.epoch h.records (max !sealed start) h.records
           | _ -> ());
        sealed := max !sealed h.records
      end)
    seals;
  (* An undecodable block is tampering unless the caller accepts a torn
     tail and every sealed record is accounted for — then the wreck can
     only be the unsealed suffix of the final flush. *)
  let tail_ok = lenient_tail && !sealed <= total in
  List.iter (fun reason -> if not tail_ok then err "chain: %s" reason) bads;
  (* Anchor: a previously trusted head must still lie on this chain. *)
  (match from with
   | None -> ()
   | Some f when f.records = 0 -> ()
   | Some f ->
     if f.records > total then
       err ~at:total "chain: trusted head at record %d is beyond the recovered log (%d records): rollback"
         f.records total
     else if f.records < start then
       err "chain: trusted head at record %d predates the earliest surviving record %d; cannot \
            validate the anchor"
         f.records start
     else (
       match Hashtbl.find_opt heads_at f.records with
       | Some walked when not (String.equal walked f.hash) ->
         err ~at:0 "chain: trusted head at record %d is not on this chain: history was rewritten"
           f.records
       | _ ->
         if f.epoch > !last_epoch then
           err "chain: trusted head epoch %d is newer than every recovered seal (epoch %d): \
                rollback"
             f.epoch !last_epoch));
  {
    v_records = total - pruned;
    v_sealed = max 0 (!sealed - pruned);
    v_epochs = !epochs;
    v_head =
      (if total > pruned || blocks <> [] then Some { epoch = !last_epoch; records = total; hash = !hash }
       else None);
    v_tail = max 0 (total - max !sealed pruned);
    v_pruned = pruned;
    v_first_bad = !first_bad;
    v_errors = List.rev !errors;
  }

(* Wire/persist codec for a whole result (used by the verify-log RPC). *)

let write_result w r =
  Bcodec.w_int w r.v_records;
  Bcodec.w_int w r.v_sealed;
  Bcodec.w_int w r.v_epochs;
  (match r.v_head with
   | None -> Bcodec.w_u8 w 0
   | Some h ->
     Bcodec.w_u8 w 1;
     write_head w h);
  Bcodec.w_int w r.v_tail;
  Bcodec.w_int w r.v_pruned;
  Bcodec.w_int w (r.v_first_bad + 1);
  Bcodec.w_int w (List.length r.v_errors);
  List.iter (fun e -> Bcodec.w_string w e) r.v_errors

let read_result ?(max_errors = 4096) rd =
  let v_records = Bcodec.r_int rd in
  let v_sealed = Bcodec.r_int rd in
  let v_epochs = Bcodec.r_int rd in
  let v_head = match Bcodec.r_u8 rd with 0 -> None | _ -> Some (read_head rd) in
  let v_tail = Bcodec.r_int rd in
  let v_pruned = Bcodec.r_int rd in
  let v_first_bad = Bcodec.r_int rd - 1 in
  let n = Bcodec.r_int rd in
  if n < 0 || n > max_errors || n > Bcodec.remaining rd then
    raise (Bcodec.Decode_error "Chain.read_result: bad error count");
  let v_errors = List.init n (fun _ -> Bcodec.r_string rd) in
  { v_records; v_sealed; v_epochs; v_head; v_tail; v_pruned; v_first_bad; v_errors }
