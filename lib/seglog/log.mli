(** Append-only segment log over a simulated disk.

    This is the LFS-style layer of S4: the disk (minus a reserved
    superblock segment) is divided into fixed-size segments; blocks are
    appended to the open segment and buffered until {!sync} (or until
    the segment fills), so many small updates cluster into large
    sequential writes. Old data is never overwritten in place, which is
    what makes comprehensive versioning write-time free.

    The log also tracks per-block liveness for the cleaner: the object
    store {!kill}s a block when the version holding it ages out of the
    history pool, and fully dead segments can be reclaimed. *)

type t

type addr = int
(** Absolute block number on disk. [none] (-1) means "no block". *)

val none : addr

exception Log_full
(** Raised by {!append} when no free segment can be opened. *)

type seg_state = Free | Open | Closed

type seg_info = {
  seg_index : int;
  seg_state : seg_state;
  seg_epoch : int;  (** allocation order; 0 for never-used *)
  seg_live : int;  (** live blocks *)
  seg_written : int;  (** slots consumed (excluding summary) *)
}

type stats = {
  mutable appends : int;
  mutable flush_ops : int;  (** sync/close flushes that touched the disk *)
  mutable blocks_flushed : int;
  mutable summaries_written : int;
  mutable blocks_read : int;
  mutable segments_opened : int;
  mutable segments_reclaimed : int;
  mutable io_retries : int;  (** transient-fault re-issues (see {!set_io_retry}) *)
}

val create :
  ?block_size:int ->
  ?blocks_per_segment:int ->
  ?auto_reclaim:bool ->
  S4_disk.Sim_disk.t ->
  t
(** Format a fresh log on [disk]. Defaults: 4 KiB blocks, 128-block
    (512 KiB) segments, [auto_reclaim] true — when the log runs out of
    free segments it first reclaims fully dead closed segments (at no
    simulated cost; reclaiming a dead segment needs no I/O) before
    raising {!Log_full}. Segment 0 is reserved for the superblock. *)

val block_size : t -> int
val blocks_per_segment : t -> int
val disk : t -> S4_disk.Sim_disk.t
val clock : t -> S4_util.Simclock.t

val total_segments : t -> int
val free_segments : t -> int
val usable_blocks : t -> int
(** Data-block capacity of the whole log. *)

val live_blocks : t -> int
val utilization : t -> float
(** live / usable, in 0..1. *)

val charge_io : t -> bool -> unit
(** When set to [false], subsequent log I/O updates state and contents
    but does not advance the simulated clock or disk stats. Used to
    build "free cleaning" baselines. Default [true]. *)

val set_io_retry : t -> limit:int -> backoff_ms:float -> unit
(** Re-issue disk I/O that raises a transient {!S4_disk.Fault} fault,
    up to [limit] times per request with exponential backoff starting
    at [backoff_ms] (paid on the simulated clock). Retrying at this
    level is sound — the re-issued request targets the same sectors —
    whereas replaying a whole store operation is not. Permanent faults
    and exhausted retries propagate. Default: no retry. *)

(** {1 Writing} *)

val append : t -> Tag.t -> ?data:Bytes.t -> unit -> addr
(** Allocate the next block of the open segment, to be written at the
    next {!sync} (or segment close). [data], when given, must be
    exactly one block. The returned address is final. *)

val sync : t -> unit
(** Flush buffered blocks of the open segment to disk (one sequential
    write). Cheap no-op when nothing is buffered. *)

val write_superblock : t -> Bytes.t -> unit
(** Overwrite the (in-place) superblock, padded to one block. *)

val read_superblock : t -> Bytes.t
(** Timed read of the superblock. *)

(** {1 Reading} *)

val read : t -> addr -> Bytes.t
(** Timed read of one block (free if the block is still buffered). *)

val read_run : t -> addr -> int -> (addr * Bytes.t) list
(** [read_run t a n] reads up to [n] blocks starting at [a] as one
    sequential disk operation, clamped to the written extent of [a]'s
    segment. Used for read-ahead. *)

val peek : t -> addr -> Bytes.t
(** Contents without timing. *)

(** {1 Liveness and cleaning support} *)

val kill : t -> addr -> unit
(** Mark a block dead. Idempotent. *)

val is_live : t -> addr -> bool
val tag_of : t -> addr -> Tag.t option
(** Tag of a written block (live or dead), [None] if never written. *)

val seg_of : t -> addr -> int
val segments : t -> seg_info array
val seg_live_addrs : t -> int -> (addr * Tag.t) list
(** Live blocks of a segment, ascending. *)

val all_tagged : t -> (addr * Tag.t) list
(** Every written slot whose tag is known (live or dead), ascending by
    address. After {!reattach} this reflects what segment summaries and
    block probing could identify; used by owners of non-journal streams
    (e.g. the audit log) to re-find their blocks. *)

val reclaim_dead_segments : t -> int
(** Free closed segments with no live blocks; returns how many. *)

val stats : t -> stats

(** {1 Crash recovery} *)

val reattach : S4_disk.Sim_disk.t -> t
(** Rebuild log state from disk contents after a "crash": segment
    summaries identify closed segments; unsummarised segments are
    probed for self-identifying blocks. All blocks start dead — the
    store re-marks live blocks as it replays the journal. *)

val mark_live : t -> addr -> Tag.t -> unit
(** Declare a block live during recovery (idempotent). *)

val journal_blocks : t -> (addr * int * Jblock.entry list) list
(** All decodable journal blocks [(addr, prev, entries)] in segment
    epoch order then slot order; charges a sequential read per scanned
    segment. *)

val pp_stats : Format.formatter -> t -> unit
