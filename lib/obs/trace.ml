type layer = Nfs | Net | Router | Drive | Store | Seglog | Disk

let layer_name = function
  | Nfs -> "nfs"
  | Net -> "net"
  | Router -> "router"
  | Drive -> "drive"
  | Store -> "store"
  | Seglog -> "seglog"
  | Disk -> "disk"

type span = {
  id : int;
  parent : int;
  layer : layer;
  kind : string;
  start_ns : int64;
  mutable stop_ns : int64;
  mutable oid : int64;
  mutable shard : int;
  mutable bytes : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable faults : int;
  mutable retries : int;
  mutable at_ns : int64;
  mutable cutoff_ns : int64;
  mutable charged_ns : int64;
  mutable disk_ns : int64;
  mutable ok : bool;
  mutable err : string;
}

let unset = Int64.min_int
let null = -1

(* Growable span store; ids are array indices, so parent lookups are
   O(1) and a snapshot is a single Array.sub.

   Domain-safety: allocation (id assignment + push) and snapshot are
   serialized by one registry mutex; each domain keeps its own
   open-span stack in domain-local storage, so parenting follows the
   domain that actually executes the work (a span opened on a shard
   worker domain roots its own tree there). Field mutation needs no
   lock — a span is written only by the domain that opened it until it
   finishes, and snapshots are taken at quiescence. The enabled flag
   is atomic so [on] stays one plain load on the hot path. *)
let enabled = Atomic.make false
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let buf : span array ref = ref [||]
let len = ref 0

let stack_slot : int list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let my_stack () = Domain.DLS.get stack_slot

let on () = Atomic.get enabled
let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false

let clear () =
  locked (fun () ->
      buf := [||];
      len := 0);
  my_stack () := []

let count () = locked (fun () -> !len)
let spans () = locked (fun () -> Array.sub !buf 0 !len)

let grow () =
  let cap = Array.length !buf in
  if !len >= cap then begin
    let ncap = max 256 (2 * cap) in
    let nb =
      Array.make ncap
        {
          id = -1;
          parent = -1;
          layer = Disk;
          kind = "";
          start_ns = 0L;
          stop_ns = unset;
          oid = -1L;
          shard = -1;
          bytes = 0;
          cache_hits = 0;
          cache_misses = 0;
          faults = 0;
          retries = 0;
          at_ns = unset;
          cutoff_ns = unset;
          charged_ns = unset;
          disk_ns = unset;
          ok = true;
          err = "";
        }
    in
    Array.blit !buf 0 nb 0 cap;
    buf := nb
  end

let push s =
  grow ();
  !buf.(!len) <- s;
  incr len

let fresh ~parent layer ~kind ~start_ns =
  {
    id = !len;
    parent;
    layer;
    kind;
    start_ns;
    stop_ns = unset;
    oid = -1L;
    shard = -1;
    bytes = 0;
    cache_hits = 0;
    cache_misses = 0;
    faults = 0;
    retries = 0;
    at_ns = unset;
    cutoff_ns = unset;
    charged_ns = unset;
    disk_ns = unset;
    ok = true;
    err = "";
  }

let current_parent () = match !(my_stack ()) with [] -> -1 | p :: _ -> p

let enter layer ~kind ~now =
  if not (on ()) then null
  else begin
    let parent = current_parent () in
    let id =
      locked (fun () ->
          let s = fresh ~parent layer ~kind ~start_ns:now in
          push s;
          s.id)
    in
    let st = my_stack () in
    st := id :: !st;
    id
  end

(* The record itself is stable once pushed; only the backing array may
   be swapped by a concurrent [grow], hence the locked fetch. *)
let span_of tok = locked (fun () -> !buf.(tok))

let record_metrics s =
  let name = layer_name s.layer ^ "/" ^ s.kind in
  if Int64.compare s.stop_ns unset <> 0 then
    Metrics.observe name (Int64.to_float (Int64.sub s.stop_ns s.start_ns) /. 1e3);
  if s.bytes > 0 then Metrics.incr ~by:s.bytes (layer_name s.layer ^ ".bytes");
  if s.cache_hits > 0 then Metrics.incr ~by:s.cache_hits (layer_name s.layer ^ ".cache_hits");
  if s.cache_misses > 0 then
    Metrics.incr ~by:s.cache_misses (layer_name s.layer ^ ".cache_misses");
  if s.faults > 0 then Metrics.incr ~by:s.faults (layer_name s.layer ^ ".faults");
  if s.retries > 0 then Metrics.incr ~by:s.retries (layer_name s.layer ^ ".retries");
  if not s.ok then Metrics.incr (name ^ ".errors")

let close_one id ~now ~abandoned =
  let s = span_of id in
  if Int64.compare s.stop_ns unset = 0 then begin
    s.stop_ns <- now;
    if abandoned && s.err = "" then begin
      s.ok <- false;
      s.err <- "abandoned"
    end;
    record_metrics s
  end

(* Pop until [tok] is off the stack: children still open when their
   parent finishes were unwound by an exception through a frame with
   no instrumentation — close them at the same instant. *)
let rec unwind tok ~now =
  let stack = my_stack () in
  match !stack with
  | [] -> ()
  | top :: rest ->
    stack := rest;
    if top = tok then close_one top ~now ~abandoned:false
    else begin
      close_one top ~now ~abandoned:true;
      unwind tok ~now
    end

let finish tok ~now = if tok >= 0 then unwind tok ~now

let abort tok ~now =
  if tok >= 0 then begin
    let s = span_of tok in
    s.ok <- false;
    if s.err = "" then s.err <- "exception";
    unwind tok ~now
  end

let emit layer ~kind ~start_ns ~stop_ns ?(bytes = 0) ?(disk_ns = unset) () =
  if on () then begin
    let parent = current_parent () in
    let s =
      locked (fun () ->
          let s = fresh ~parent layer ~kind ~start_ns in
          s.stop_ns <- stop_ns;
          s.bytes <- bytes;
          s.disk_ns <- disk_ns;
          push s;
          s)
    in
    record_metrics s
  end

let set_oid tok oid = if tok >= 0 then (span_of tok).oid <- oid
let set_shard tok sh = if tok >= 0 then (span_of tok).shard <- sh
let set_bytes tok n = if tok >= 0 then (span_of tok).bytes <- n

let add_cache tok ~hits ~misses =
  if tok >= 0 then begin
    let s = span_of tok in
    s.cache_hits <- s.cache_hits + hits;
    s.cache_misses <- s.cache_misses + misses
  end

let add_faults tok n = if tok >= 0 then (span_of tok).faults <- (span_of tok).faults + n
let add_retries tok n = if tok >= 0 then (span_of tok).retries <- (span_of tok).retries + n
let set_at tok v = if tok >= 0 then (span_of tok).at_ns <- v
let set_cutoff tok v = if tok >= 0 then (span_of tok).cutoff_ns <- v

let add_charged tok v =
  if tok >= 0 then begin
    let s = span_of tok in
    s.charged_ns <- (if Int64.compare s.charged_ns unset = 0 then v else Int64.add s.charged_ns v)
  end

let set_disk_ns tok v = if tok >= 0 then (span_of tok).disk_ns <- v

let fail tok tag =
  if tok >= 0 then begin
    let s = span_of tok in
    s.ok <- false;
    s.err <- tag
  end

let pp_span ppf s =
  Format.fprintf ppf "#%d %s/%s" s.id (layer_name s.layer) s.kind;
  if Int64.compare s.oid (-1L) <> 0 then Format.fprintf ppf " oid=%Ld" s.oid;
  if s.shard >= 0 then Format.fprintf ppf " shard=%d" s.shard;
  Format.fprintf ppf " start=%Ldns" s.start_ns;
  if Int64.compare s.stop_ns unset <> 0 then
    Format.fprintf ppf " dur=%.1fus" (Int64.to_float (Int64.sub s.stop_ns s.start_ns) /. 1e3);
  if s.bytes > 0 then Format.fprintf ppf " bytes=%d" s.bytes;
  if s.cache_hits + s.cache_misses > 0 then
    Format.fprintf ppf " cache=%d/%d" s.cache_hits (s.cache_hits + s.cache_misses);
  if Int64.compare s.disk_ns unset <> 0 then
    Format.fprintf ppf " disk=%.1fus" (Int64.to_float s.disk_ns /. 1e3);
  if Int64.compare s.charged_ns unset <> 0 then
    Format.fprintf ppf " charged=%.1fus" (Int64.to_float s.charged_ns /. 1e3);
  if s.faults > 0 then Format.fprintf ppf " faults=%d" s.faults;
  if s.retries > 0 then Format.fprintf ppf " retries=%d" s.retries;
  if not s.ok then Format.fprintf ppf " FAILED(%s)" s.err

let pp_tree ppf sp =
  let depth = Array.make (Array.length sp) 0 in
  Array.iter
    (fun s -> if s.parent >= 0 && s.parent < Array.length sp then depth.(s.id) <- depth.(s.parent) + 1)
    sp;
  Array.iter
    (fun s -> Format.fprintf ppf "%s%a@." (String.make (2 * depth.(s.id)) ' ') pp_span s)
    sp
