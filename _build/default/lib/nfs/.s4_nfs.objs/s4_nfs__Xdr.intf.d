lib/nfs/xdr.mli: Bytes Nfs_types
