(* Tests for the NFS overlay: types/codecs, the S4 translator in both
   Figure-1 configurations, and the server wrapper. *)

module Simclock = S4_util.Simclock
module Geometry = S4_disk.Geometry
module Sim_disk = S4_disk.Sim_disk
module Net = S4_disk.Net
module Drive = S4.Drive
module Client = S4.Client
module Rpc = S4.Rpc
module N = S4_nfs.Nfs_types
module Translator = S4_nfs.Translator
module Server = S4_nfs.Server

let check = Alcotest.check
let qtest = Qseed.qtest

let geom mb = Geometry.with_capacity Geometry.cheetah_9gb ~bytes:(mb * 1024 * 1024)

let mk_local ?(mb = 64) () =
  let clock = Simclock.create () in
  let disk = Sim_disk.create ~geometry:(geom mb) clock in
  let drive = Drive.format disk in
  let tr = Translator.mount (Translator.Local drive) in
  (clock, drive, tr)

let mk_remote ?(mb = 64) () =
  let clock = Simclock.create () in
  let disk = Sim_disk.create ~geometry:(geom mb) clock in
  let drive = Drive.format disk in
  let net = Net.create clock in
  let tr = Translator.mount (Translator.Remote (Client.connect net drive)) in
  (clock, drive, tr)

let fh_of = function
  | N.R_fh (fh, _) -> fh
  | r -> Alcotest.failf "expected fh, got error? %s" (match r with N.R_error e -> Format.asprintf "%a" N.pp_error e | _ -> "other")

let expect_unit = function
  | N.R_unit -> ()
  | N.R_error e -> Alcotest.failf "unexpected error %a" N.pp_error e
  | _ -> Alcotest.fail "expected unit"

let expect_err expected = function
  | N.R_error e when e = expected -> ()
  | N.R_error e -> Alcotest.failf "wrong error: %a" N.pp_error e
  | _ -> Alcotest.fail "expected an error"

(* --- Codecs ----------------------------------------------------------- *)

let test_attr_roundtrip () =
  let a =
    { N.ftype = N.Freg; mode = 0o640; nlink = 1; uid = 7; gid = 8; size = 12345;
      mtime = 111L; ctime = 222L; atime = 333L }
  in
  check Alcotest.bool "roundtrip" true (N.decode_attr (N.encode_attr a) = a)

let test_dir_slot_roundtrip () =
  let e = { N.name = "hello.txt"; fh = 42L } in
  check Alcotest.bool "some" true (N.decode_slot (N.encode_slot (Some e)) ~pos:0 = Some e);
  check Alcotest.bool "none" true (N.decode_slot (N.encode_slot None) ~pos:0 = None)

let test_dir_roundtrip () =
  let entries = List.init 20 (fun i -> { N.name = Printf.sprintf "f%d" i; fh = Int64.of_int i }) in
  check Alcotest.bool "roundtrip" true (N.decode_dir (N.encode_dir entries) = entries)

let test_dir_slots_with_holes () =
  let e0 = N.encode_slot (Some { N.name = "a"; fh = 1L }) in
  let hole = N.encode_slot None in
  let e2 = N.encode_slot (Some { N.name = "b"; fh = 2L }) in
  let data = Bytes.concat Bytes.empty [ e0; hole; e2 ] in
  let dents, nslots = N.decode_dir_slots data in
  check Alcotest.int "slots" 3 nslots;
  check Alcotest.bool "two entries at 0 and 2" true
    (List.map snd dents = [ 0; 2 ])

let test_long_name_rejected () =
  check Alcotest.bool "raises" true
    (try
       ignore (N.encode_slot (Some { N.name = String.make 60 'x'; fh = 1L }));
       false
     with Invalid_argument _ -> true)

let prop_dir_roundtrip =
  QCheck.Test.make ~name:"directory slot array roundtrip" ~count:100
    QCheck.(list_of_size Gen.(0 -- 30) (pair (string_of_size Gen.(1 -- 20)) (int_range 1 10000)))
    (fun raw ->
      let sane =
        List.filter (fun (n, _) -> String.length n > 0 && not (String.contains n '\000')) raw
      in
      let entries = List.map (fun (n, i) -> { N.name = n; fh = Int64.of_int i }) sane in
      N.decode_dir (N.encode_dir entries) = entries)

(* --- Translator file operations -------------------------------------- *)

let mkdir tr ~dir name = fh_of (Translator.handle tr (N.Mkdir { dir; name; mode = 0o755 }))
let create tr ~dir name = fh_of (Translator.handle tr (N.Create { dir; name; mode = 0o644 }))

let write tr fh off s =
  match Translator.handle tr (N.Write { fh; off; data = Bytes.of_string s }) with
  | N.R_attr a -> a
  | _ -> Alcotest.fail "write failed"

let read tr fh off len =
  match Translator.handle tr (N.Read { fh; off; len }) with
  | N.R_data b -> Bytes.to_string b
  | _ -> Alcotest.fail "read failed"

let test_create_write_read () =
  let _, _, tr = mk_local () in
  let root = Translator.root tr in
  let fh = create tr ~dir:root "file.txt" in
  let a = write tr fh 0 "file contents" in
  check Alcotest.int "size" 13 a.N.size;
  check Alcotest.string "read back" "file contents" (read tr fh 0 100);
  check Alcotest.string "offset read" "contents" (read tr fh 5 100)

let test_lookup_and_getattr () =
  let _, _, tr = mk_local () in
  let root = Translator.root tr in
  let d = mkdir tr ~dir:root "sub" in
  let f = create tr ~dir:d "x" in
  ignore (write tr f 0 "abc");
  (match Translator.handle tr (N.Lookup { dir = root; name = "sub" }) with
   | N.R_fh (fh, a) ->
     check Alcotest.int64 "dir fh" d fh;
     check Alcotest.bool "is dir" true (a.N.ftype = N.Fdir)
   | _ -> Alcotest.fail "lookup sub");
  (match Translator.handle tr (N.Lookup { dir = d; name = "x" }) with
   | N.R_fh (fh, _) -> check Alcotest.int64 "file fh" f fh
   | _ -> Alcotest.fail "lookup x");
  expect_err N.Enoent (Translator.handle tr (N.Lookup { dir = d; name = "missing" }));
  match Translator.handle tr (N.Getattr f) with
  | N.R_attr a -> check Alcotest.int "size" 3 a.N.size
  | _ -> Alcotest.fail "getattr"

let test_readdir () =
  let _, _, tr = mk_local () in
  let root = Translator.root tr in
  let d = mkdir tr ~dir:root "dir" in
  List.iter (fun n -> ignore (create tr ~dir:d n)) [ "a"; "b"; "c" ];
  match Translator.handle tr (N.Readdir d) with
  | N.R_entries es ->
    check (Alcotest.list Alcotest.string) "names" [ "a"; "b"; "c" ]
      (List.sort compare (List.map (fun e -> e.N.name) es))
  | _ -> Alcotest.fail "readdir"

let test_remove_and_slot_reuse () =
  let _, drive, tr = mk_local () in
  let root = Translator.root tr in
  let d = mkdir tr ~dir:root "dir" in
  ignore (create tr ~dir:d "a");
  ignore (create tr ~dir:d "b");
  expect_unit (Translator.handle tr (N.Remove { dir = d; name = "a" }));
  ignore (create tr ~dir:d "c");
  (* "c" should have reused "a"'s slot: dir size stays at 2 slots. *)
  (match Translator.handle tr (N.Getattr d) with
   | N.R_attr a -> check Alcotest.int "2 slots" (2 * N.slot_size) a.N.size
   | _ -> Alcotest.fail "getattr dir");
  ignore drive;
  expect_err N.Enoent (Translator.handle tr (N.Remove { dir = d; name = "a" }))

let test_remove_nonempty_dir_fails () =
  let _, _, tr = mk_local () in
  let root = Translator.root tr in
  let d = mkdir tr ~dir:root "dir" in
  ignore (create tr ~dir:d "child");
  expect_err N.Enotempty (Translator.handle tr (N.Rmdir { dir = root; name = "dir" }));
  expect_err N.Eisdir (Translator.handle tr (N.Remove { dir = root; name = "dir" }));
  expect_unit (Translator.handle tr (N.Remove { dir = d; name = "child" }));
  expect_unit (Translator.handle tr (N.Rmdir { dir = root; name = "dir" }))

let test_rename () =
  let _, _, tr = mk_local () in
  let root = Translator.root tr in
  let d1 = mkdir tr ~dir:root "d1" in
  let d2 = mkdir tr ~dir:root "d2" in
  let f = create tr ~dir:d1 "old" in
  ignore (write tr f 0 "payload");
  expect_unit
    (Translator.handle tr (N.Rename { from_dir = d1; from_name = "old"; to_dir = d2; to_name = "new" }));
  expect_err N.Enoent (Translator.handle tr (N.Lookup { dir = d1; name = "old" }));
  (match Translator.handle tr (N.Lookup { dir = d2; name = "new" }) with
   | N.R_fh (fh, _) ->
     check Alcotest.int64 "same object" f fh;
     check Alcotest.string "contents follow" "payload" (read tr fh 0 100)
   | _ -> Alcotest.fail "lookup renamed")

let test_rename_overwrites_target () =
  let _, _, tr = mk_local () in
  let root = Translator.root tr in
  let f1 = create tr ~dir:root "src" in
  ignore (write tr f1 0 "source");
  let f2 = create tr ~dir:root "dst" in
  ignore (write tr f2 0 "target");
  expect_unit
    (Translator.handle tr (N.Rename { from_dir = root; from_name = "src"; to_dir = root; to_name = "dst" }));
  match Translator.handle tr (N.Lookup { dir = root; name = "dst" }) with
  | N.R_fh (fh, _) ->
    check Alcotest.int64 "src object now at dst" f1 fh;
    check Alcotest.string "source content" "source" (read tr fh 0 100)
  | _ -> Alcotest.fail "lookup dst"

let test_setattr_truncate () =
  let _, _, tr = mk_local () in
  let root = Translator.root tr in
  let f = create tr ~dir:root "t" in
  ignore (write tr f 0 "0123456789");
  (match Translator.handle tr (N.Setattr { fh = f; mode = Some 0o600; size = Some 4 }) with
   | N.R_attr a ->
     check Alcotest.int "new size" 4 a.N.size;
     check Alcotest.int "new mode" 0o600 a.N.mode
   | _ -> Alcotest.fail "setattr");
  check Alcotest.string "truncated" "0123" (read tr f 0 100)

let test_symlink_readlink () =
  let _, _, tr = mk_local () in
  let root = Translator.root tr in
  expect_unit (Translator.handle tr (N.Symlink { dir = root; name = "link"; target = "/some/where" }));
  match Translator.handle tr (N.Lookup { dir = root; name = "link" }) with
  | N.R_fh (fh, a) ->
    check Alcotest.bool "is symlink" true (a.N.ftype = N.Flnk);
    (match Translator.handle tr (N.Readlink fh) with
     | N.R_link s -> check Alcotest.string "target" "/some/where" s
     | _ -> Alcotest.fail "readlink")
  | _ -> Alcotest.fail "lookup link"

let test_create_exists () =
  let _, _, tr = mk_local () in
  let root = Translator.root tr in
  ignore (create tr ~dir:root "dup");
  expect_err N.Eexist (Translator.handle tr (N.Create { dir = root; name = "dup"; mode = 0o644 }))

let test_statfs () =
  let _, _, tr = mk_local () in
  match Translator.handle tr N.Statfs with
  | N.R_statfs { total_bytes; free_bytes } ->
    check Alcotest.bool "sane" true (total_bytes > 0 && free_bytes > 0 && free_bytes <= total_bytes)
  | _ -> Alcotest.fail "statfs"

let test_mount_persistent () =
  let _, drive, tr = mk_local () in
  let root = Translator.root tr in
  ignore (create tr ~dir:root "persist");
  (* A second mount of the same partition sees the same root. *)
  let tr2 = Translator.mount (Translator.Local drive) in
  check Alcotest.int64 "same root" root (Translator.root tr2);
  match Translator.handle tr2 (N.Lookup { dir = Translator.root tr2; name = "persist" }) with
  | N.R_fh _ -> ()
  | _ -> Alcotest.fail "file visible through second mount"

let test_remote_config_pays_network () =
  let clock_l, _, tr_l = mk_local () in
  let clock_r, _, tr_r = mk_remote () in
  let run clock tr =
    let t0 = Simclock.now clock in
    let f = create tr ~dir:(Translator.root tr) "f" in
    ignore (write tr f 0 (String.make 8192 'x'));
    Int64.sub (Simclock.now clock) t0
  in
  let local = run clock_l tr_l in
  let remote = run clock_r tr_r in
  check Alcotest.bool "remote slower (network + loopback)" true (Int64.compare remote local > 0)

let test_rpc_batching_counts () =
  let _, _, tr = mk_local () in
  let root = Translator.root tr in
  let before = Translator.rpc_count tr in
  ignore (create tr ~dir:root "counted");
  let create_rpcs = Translator.rpc_count tr - before in
  (* Create + SetAttr + slot write + dir SetAttr: a handful, not a storm. *)
  check Alcotest.bool "several RPCs per create" true (create_rpcs >= 3 && create_rpcs <= 8)

let test_attr_cache_hits () =
  let _, _, tr = mk_local () in
  let root = Translator.root tr in
  let f = create tr ~dir:root "cached" in
  ignore (Translator.handle tr (N.Getattr f));
  ignore (Translator.handle tr (N.Getattr f));
  ignore (Translator.handle tr (N.Getattr f));
  let hits, _ = Translator.attr_cache_stats tr in
  check Alcotest.bool "cache hits" true (hits >= 2)

let test_versioning_through_nfs () =
  (* The drive keeps versions even though NFS has no notion of time. *)
  let clock, drive, tr = mk_local () in
  let root = Translator.root tr in
  let f = create tr ~dir:root "doc" in
  ignore (write tr f 0 "draft one");
  let t1 = Simclock.now clock in
  Simclock.advance clock 1_000_000L;
  ignore (write tr f 0 "draft TWO");
  (match Drive.handle drive Rpc.admin_cred (Rpc.Read { oid = f; off = 0; len = 9; at = Some t1 }) with
   | Rpc.R_data b -> check Alcotest.string "old draft via S4" "draft one" (Bytes.to_string b)
   | _ -> Alcotest.fail "time-based read");
  check Alcotest.string "current via NFS" "draft TWO" (read tr f 0 9)

(* --- Path helpers ------------------------------------------------------ *)

let test_path_helpers () =
  let _, _, tr = mk_local () in
  (match Translator.mkdir_p tr "a/b/c" with Ok _ -> () | Error e -> Alcotest.failf "mkdir_p: %a" N.pp_error e);
  (match Translator.write_file tr "a/b/c/file.txt" (Bytes.of_string "deep") with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "write_file: %a" N.pp_error e);
  (match Translator.read_file tr "a/b/c/file.txt" with
   | Ok b -> check Alcotest.string "read" "deep" (Bytes.to_string b)
   | Error e -> Alcotest.failf "read_file: %a" N.pp_error e);
  (match Translator.lookup_path tr "a/b" with
   | Ok (_, a) -> check Alcotest.bool "is dir" true (a.N.ftype = N.Fdir)
   | Error e -> Alcotest.failf "lookup_path: %a" N.pp_error e);
  (match Translator.lookup_path tr "a/missing" with
   | Error N.Enoent -> ()
   | _ -> Alcotest.fail "missing path");
  (* write_file overwrites *)
  (match Translator.write_file tr "a/b/c/file.txt" (Bytes.of_string "v2") with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "overwrite: %a" N.pp_error e);
  match Translator.read_file tr "a/b/c/file.txt" with
  | Ok b -> check Alcotest.string "overwritten" "v2" (Bytes.to_string b)
  | Error e -> Alcotest.failf "re-read: %a" N.pp_error e

(* --- XDR wire codec ------------------------------------------------------ *)

module Xdr = S4_nfs.Xdr

let sample_reqs =
  [
    N.Getattr 42L;
    N.Setattr { fh = 7L; mode = Some 0o600; size = Some 1234 };
    N.Setattr { fh = 7L; mode = None; size = None };
    N.Lookup { dir = 2L; name = "a-file" };
    N.Readlink 9L;
    N.Read { fh = 3L; off = 4096; len = 8192 };
    N.Write { fh = 3L; off = 12; data = Bytes.of_string "hello xdr world" };
    N.Create { dir = 2L; name = "new"; mode = 0o644 };
    N.Remove { dir = 2L; name = "old" };
    N.Rename { from_dir = 2L; from_name = "x"; to_dir = 5L; to_name = "yy" };
    N.Mkdir { dir = 2L; name = "subdir"; mode = 0o755 };
    N.Rmdir { dir = 2L; name = "subdir" };
    N.Readdir 2L;
    N.Symlink { dir = 2L; name = "ln"; target = "/some/target" };
    N.Statfs;
  ]

let test_xdr_req_roundtrip () =
  List.iter
    (fun req ->
      let xid, back = Xdr.decode_req (Xdr.encode_req ~xid:77 req) in
      check Alcotest.int "xid" 77 xid;
      check Alcotest.bool (N.req_name req ^ " roundtrip") true (back = req))
    sample_reqs

let test_xdr_resp_roundtrip () =
  let attr = N.fresh_attr N.Freg ~uid:3 ~now:123_456_789_000L in
  let cases =
    [
      (1, N.R_attr { attr with N.size = 999 });
      (4, N.R_fh (11L, attr));
      (6, N.R_data (Bytes.of_string "payload!"));
      (5, N.R_link "/a/b");
      (10, N.R_unit);
      (16, N.R_entries [ { N.name = "one"; fh = 1L }; { N.name = "two"; fh = 2L } ]);
      (17, N.R_statfs { total_bytes = 4096 * 1000; free_bytes = 4096 * 250 });
      (6, N.R_error N.Enoent);
      (8, N.R_error N.Eacces);
    ]
  in
  List.iter
    (fun (proc, resp) ->
      let xid, back = Xdr.decode_resp ~proc (Xdr.encode_resp ~xid:5 ~proc resp) in
      check Alcotest.int "xid" 5 xid;
      check Alcotest.bool "roundtrip" true (back = resp))
    cases

let test_xdr_alignment () =
  (* Every encoded message is a whole number of 4-byte XDR words. *)
  List.iter
    (fun req -> check Alcotest.int (N.req_name req ^ " aligned") 0 (Xdr.req_wire_bytes req mod 4))
    sample_reqs

let test_xdr_rejects_garbage () =
  check Alcotest.bool "garbage" true
    (try
       ignore (Xdr.decode_req (Bytes.make 64 'Z'));
       false
     with S4_util.Bcodec.Decode_error _ -> true)

let prop_xdr_write_roundtrip =
  QCheck.Test.make ~name:"xdr write payload roundtrip" ~count:100
    QCheck.(pair (string_of_size Gen.(0 -- 2000)) small_nat)
    (fun (payload, off) ->
      let req = N.Write { fh = 17L; off; data = Bytes.of_string payload } in
      snd (Xdr.decode_req (Xdr.encode_req ~xid:1 req)) = req)

(* --- Server wrapper ----------------------------------------------------- *)

let test_server_over_net () =
  let clock, _, tr = mk_local () in
  let server = Server.of_translator ~name:"t" tr in
  let net = Net.create clock in
  let wrapped = Server.over_net net server in
  let t0 = Simclock.now clock in
  ignore (wrapped.Server.handle (N.Getattr (Translator.root tr)));
  check Alcotest.bool "network charged" true (Int64.compare (Simclock.now clock) t0 > 0);
  check Alcotest.int "net stats" 1 (Net.stats net).Net.rpcs

let test_server_handle_exn () =
  let _, _, tr = mk_local () in
  let server = Server.of_translator ~name:"t" tr in
  check Alcotest.bool "raises" true
    (try
       ignore (Server.handle_exn server (N.Lookup { dir = Translator.root tr; name = "nope" }));
       false
     with Failure _ -> true)

let () =
  Alcotest.run "s4_nfs"
    [
      ( "codecs",
        [
          Alcotest.test_case "attr roundtrip" `Quick test_attr_roundtrip;
          Alcotest.test_case "slot roundtrip" `Quick test_dir_slot_roundtrip;
          Alcotest.test_case "dir roundtrip" `Quick test_dir_roundtrip;
          Alcotest.test_case "slots with holes" `Quick test_dir_slots_with_holes;
          Alcotest.test_case "long name rejected" `Quick test_long_name_rejected;
          qtest prop_dir_roundtrip;
        ] );
      ( "translator",
        [
          Alcotest.test_case "create/write/read" `Quick test_create_write_read;
          Alcotest.test_case "lookup/getattr" `Quick test_lookup_and_getattr;
          Alcotest.test_case "readdir" `Quick test_readdir;
          Alcotest.test_case "remove and slot reuse" `Quick test_remove_and_slot_reuse;
          Alcotest.test_case "nonempty dir" `Quick test_remove_nonempty_dir_fails;
          Alcotest.test_case "rename" `Quick test_rename;
          Alcotest.test_case "rename overwrites" `Quick test_rename_overwrites_target;
          Alcotest.test_case "setattr truncate" `Quick test_setattr_truncate;
          Alcotest.test_case "symlink" `Quick test_symlink_readlink;
          Alcotest.test_case "create exists" `Quick test_create_exists;
          Alcotest.test_case "statfs" `Quick test_statfs;
          Alcotest.test_case "mount persistent" `Quick test_mount_persistent;
          Alcotest.test_case "remote pays network" `Quick test_remote_config_pays_network;
          Alcotest.test_case "rpc batching" `Quick test_rpc_batching_counts;
          Alcotest.test_case "attr cache" `Quick test_attr_cache_hits;
          Alcotest.test_case "versioning through nfs" `Quick test_versioning_through_nfs;
        ] );
      ( "paths",
        [ Alcotest.test_case "helpers" `Quick test_path_helpers ] );
      ( "xdr",
        [
          Alcotest.test_case "request roundtrip" `Quick test_xdr_req_roundtrip;
          Alcotest.test_case "response roundtrip" `Quick test_xdr_resp_roundtrip;
          Alcotest.test_case "alignment" `Quick test_xdr_alignment;
          Alcotest.test_case "garbage rejected" `Quick test_xdr_rejects_garbage;
          qtest prop_xdr_write_roundtrip;
        ] );
      ( "server",
        [
          Alcotest.test_case "over net" `Quick test_server_over_net;
          Alcotest.test_case "handle_exn" `Quick test_server_handle_exn;
        ] );
    ]
