module Bcodec = S4_util.Bcodec
module Crc32 = S4_util.Crc32
module Rpc = S4.Rpc
module Acl = S4.Acl
module Audit = S4.Audit
module Metrics = S4_obs.Metrics
module Chain = S4_integrity.Chain

type frame =
  | Hello of { version : int; claim : int }
  | Hello_ack of { version : int; identity : int; now : int64 }
  | Request of { xid : int64; cred : Rpc.credential; sync : bool; req : Rpc.req }
  | Response of { xid : int64; resp : Rpc.resp; now : int64; lease : int64 }
  | Proto_error of { xid : int64; message : string }
  | Stat of { xid : int64 }
  | Stat_ack of { xid : int64; total : int; free : int; now : int64; batch : int }
  | Goodbye
  | Batch of { xid : int64; cred : Rpc.credential; sync : bool; reqs : Rpc.req array }
  | Batch_reply of { xid : int64; resps : Rpc.resp array; now : int64; leases : int64 array }

(* Version 2 adds the vectored frames ([Batch]/[Batch_reply]) and a
   max-batch field in [Stat_ack]. A peer advertises its best version
   in [Hello]; the server acks the minimum of the two and every
   subsequent frame on the connection is encoded at that version.
   Version-1 sessions are still fully supported (minus batching).

   Version 3 piggybacks the server's clock and cache leases on reply
   frames: [Response] carries [now] (server time when the reply was
   made) and [lease] (absolute server-time expiry until which the
   client may serve this reply from its cache; 0 = not cacheable), and
   [Batch_reply] carries [now] plus one lease per response. On a v1/v2
   stream the fields are neither encoded nor decoded — they read back
   as 0, so older peers simply never cache. *)
let version = 3
let min_version = 1
let magic = "S4WP"
let header_len = 20
let overhead = header_len + 4
let max_frame_default = 4 * 1024 * 1024

let frame_name = function
  | Hello _ -> "hello"
  | Hello_ack _ -> "hello_ack"
  | Request _ -> "request"
  | Response _ -> "response"
  | Proto_error _ -> "proto_error"
  | Stat _ -> "stat"
  | Stat_ack _ -> "stat_ack"
  | Goodbye -> "goodbye"
  | Batch _ -> "batch"
  | Batch_reply _ -> "batch_reply"

let ensure_metrics () =
  Metrics.incr ~by:0 "net/decode_reject";
  Metrics.incr ~by:0 "net/retry";
  Metrics.incr ~by:0 "net/reconnect"

(* ------------------------------------------------------------------ *)
(* Payload encoding. Principals (user/client ids) are written as i64:
   ACL wildcards are negative and varints are unsigned.               *)

exception Reject of string

let fail msg = raise (Reject msg)

let w_bool w b = Bcodec.w_u8 w (if b then 1 else 0)

let r_bool r =
  match Bcodec.r_u8 r with 0 -> false | 1 -> true | n -> fail (Printf.sprintf "bad bool %d" n)

let w_id w v = Bcodec.w_i64 w (Int64.of_int v)
let r_id r = Int64.to_int (Bcodec.r_i64 r)

let w_opt_at w = function
  | None -> Bcodec.w_u8 w 0
  | Some at ->
    Bcodec.w_u8 w 1;
    Bcodec.w_i64 w at

let r_opt_at r =
  match Bcodec.r_u8 r with
  | 0 -> None
  | 1 -> Some (Bcodec.r_i64 r)
  | n -> fail (Printf.sprintf "bad option tag %d" n)

let w_opt_bytes w = function
  | None -> Bcodec.w_u8 w 0
  | Some b ->
    Bcodec.w_u8 w 1;
    Bcodec.w_bytes w b

let r_opt_bytes r =
  match Bcodec.r_u8 r with
  | 0 -> None
  | 1 -> Some (Bcodec.r_bytes r)
  | n -> fail (Printf.sprintf "bad option tag %d" n)

let perm_bit = function
  | Acl.Read -> 1
  | Acl.Write -> 2
  | Acl.Delete -> 4
  | Acl.Set_attr -> 8
  | Acl.Set_acl -> 16

let all_perms = [ Acl.Read; Acl.Write; Acl.Delete; Acl.Set_attr; Acl.Set_acl ]

let w_entry w (e : Acl.entry) =
  w_id w e.Acl.user;
  w_id w e.Acl.client;
  Bcodec.w_u8 w (List.fold_left (fun acc p -> acc lor perm_bit p) 0 e.Acl.perms);
  w_bool w e.Acl.recovery

let r_entry r =
  let user = r_id r in
  let client = r_id r in
  let bits = Bcodec.r_u8 r in
  if bits land lnot 0x1f <> 0 then fail "bad perm bits";
  let perms = List.filter (fun p -> bits land perm_bit p <> 0) all_perms in
  let recovery = r_bool r in
  { Acl.user; client; perms; recovery }

(* Chain heads and verify results cross the wire through the same
   strict bounded decoder as everything else: [Chain.read_head] and
   [Chain.read_result] raise [Bcodec.Decode_error], which the framing
   layer already maps to a protocol failure. *)
let r_chain_head r =
  try Chain.read_head r with Bcodec.Decode_error m -> fail m

let r_verify_result r =
  try Chain.read_result ~max_errors:(Bcodec.remaining r) r
  with Bcodec.Decode_error m -> fail m

let w_cred w (c : Rpc.credential) =
  w_id w c.Rpc.user;
  w_id w c.Rpc.client;
  w_bool w c.Rpc.admin

let r_cred r =
  let user = r_id r in
  let client = r_id r in
  let admin = r_bool r in
  { Rpc.user; client; admin }

let w_req w (req : Rpc.req) =
  match req with
  | Rpc.Create { acl } ->
    Bcodec.w_u8 w 0;
    Bcodec.w_bytes w (Acl.encode acl)
  | Rpc.Delete { oid } ->
    Bcodec.w_u8 w 1;
    Bcodec.w_i64 w oid
  | Rpc.Read { oid; off; len; at } ->
    Bcodec.w_u8 w 2;
    Bcodec.w_i64 w oid;
    Bcodec.w_int w off;
    Bcodec.w_int w len;
    w_opt_at w at
  | Rpc.Write { oid; off; len; data } ->
    Bcodec.w_u8 w 3;
    Bcodec.w_i64 w oid;
    Bcodec.w_int w off;
    Bcodec.w_int w len;
    w_opt_bytes w data
  | Rpc.Append { oid; len; data } ->
    Bcodec.w_u8 w 4;
    Bcodec.w_i64 w oid;
    Bcodec.w_int w len;
    w_opt_bytes w data
  | Rpc.Truncate { oid; size } ->
    Bcodec.w_u8 w 5;
    Bcodec.w_i64 w oid;
    Bcodec.w_int w size
  | Rpc.Get_attr { oid; at } ->
    Bcodec.w_u8 w 6;
    Bcodec.w_i64 w oid;
    w_opt_at w at
  | Rpc.Set_attr { oid; attr } ->
    Bcodec.w_u8 w 7;
    Bcodec.w_i64 w oid;
    Bcodec.w_bytes w attr
  | Rpc.Get_acl_by_user { oid; acl_user; at } ->
    Bcodec.w_u8 w 8;
    Bcodec.w_i64 w oid;
    w_id w acl_user;
    w_opt_at w at
  | Rpc.Get_acl_by_index { oid; index; at } ->
    Bcodec.w_u8 w 9;
    Bcodec.w_i64 w oid;
    Bcodec.w_int w index;
    w_opt_at w at
  | Rpc.Set_acl { oid; index; entry } ->
    Bcodec.w_u8 w 10;
    Bcodec.w_i64 w oid;
    Bcodec.w_int w index;
    w_entry w entry
  | Rpc.P_create { name; oid } ->
    Bcodec.w_u8 w 11;
    Bcodec.w_string w name;
    Bcodec.w_i64 w oid
  | Rpc.P_delete { name } ->
    Bcodec.w_u8 w 12;
    Bcodec.w_string w name
  | Rpc.P_list { at } ->
    Bcodec.w_u8 w 13;
    w_opt_at w at
  | Rpc.P_mount { name; at } ->
    Bcodec.w_u8 w 14;
    Bcodec.w_string w name;
    w_opt_at w at
  | Rpc.Sync -> Bcodec.w_u8 w 15
  | Rpc.Flush { until } ->
    Bcodec.w_u8 w 16;
    Bcodec.w_i64 w until
  | Rpc.Flush_object { oid; until } ->
    Bcodec.w_u8 w 17;
    Bcodec.w_i64 w oid;
    Bcodec.w_i64 w until
  | Rpc.Set_window { window } ->
    Bcodec.w_u8 w 18;
    Bcodec.w_i64 w window
  | Rpc.Read_audit { since; until } ->
    Bcodec.w_u8 w 19;
    Bcodec.w_i64 w since;
    Bcodec.w_i64 w until
  | Rpc.Verify_log { from } -> (
    Bcodec.w_u8 w 20;
    match from with
    | None -> Bcodec.w_u8 w 0
    | Some h ->
      Bcodec.w_u8 w 1;
      Chain.write_head w h)

let r_req r : Rpc.req =
  match Bcodec.r_u8 r with
  | 0 -> Rpc.Create { acl = Acl.decode (Bcodec.r_bytes r) }
  | 1 -> Rpc.Delete { oid = Bcodec.r_i64 r }
  | 2 ->
    let oid = Bcodec.r_i64 r in
    let off = Bcodec.r_int r in
    let len = Bcodec.r_int r in
    Rpc.Read { oid; off; len; at = r_opt_at r }
  | 3 ->
    let oid = Bcodec.r_i64 r in
    let off = Bcodec.r_int r in
    let len = Bcodec.r_int r in
    Rpc.Write { oid; off; len; data = r_opt_bytes r }
  | 4 ->
    let oid = Bcodec.r_i64 r in
    let len = Bcodec.r_int r in
    Rpc.Append { oid; len; data = r_opt_bytes r }
  | 5 ->
    let oid = Bcodec.r_i64 r in
    Rpc.Truncate { oid; size = Bcodec.r_int r }
  | 6 ->
    let oid = Bcodec.r_i64 r in
    Rpc.Get_attr { oid; at = r_opt_at r }
  | 7 ->
    let oid = Bcodec.r_i64 r in
    Rpc.Set_attr { oid; attr = Bcodec.r_bytes r }
  | 8 ->
    let oid = Bcodec.r_i64 r in
    let acl_user = r_id r in
    Rpc.Get_acl_by_user { oid; acl_user; at = r_opt_at r }
  | 9 ->
    let oid = Bcodec.r_i64 r in
    let index = Bcodec.r_int r in
    Rpc.Get_acl_by_index { oid; index; at = r_opt_at r }
  | 10 ->
    let oid = Bcodec.r_i64 r in
    let index = Bcodec.r_int r in
    Rpc.Set_acl { oid; index; entry = r_entry r }
  | 11 ->
    let name = Bcodec.r_string r in
    Rpc.P_create { name; oid = Bcodec.r_i64 r }
  | 12 -> Rpc.P_delete { name = Bcodec.r_string r }
  | 13 -> Rpc.P_list { at = r_opt_at r }
  | 14 ->
    let name = Bcodec.r_string r in
    Rpc.P_mount { name; at = r_opt_at r }
  | 15 -> Rpc.Sync
  | 16 -> Rpc.Flush { until = Bcodec.r_i64 r }
  | 17 ->
    let oid = Bcodec.r_i64 r in
    Rpc.Flush_object { oid; until = Bcodec.r_i64 r }
  | 18 -> Rpc.Set_window { window = Bcodec.r_i64 r }
  | 19 ->
    let since = Bcodec.r_i64 r in
    Rpc.Read_audit { since; until = Bcodec.r_i64 r }
  | 20 ->
    let from = match Bcodec.r_u8 r with 0 -> None | _ -> Some (r_chain_head r) in
    Rpc.Verify_log { from }
  | op -> fail (Printf.sprintf "bad opcode %d" op)

let w_error w (e : Rpc.error) =
  match e with
  | Rpc.Not_found -> Bcodec.w_u8 w 0
  | Rpc.Permission_denied -> Bcodec.w_u8 w 1
  | Rpc.Object_deleted -> Bcodec.w_u8 w 2
  | Rpc.No_space -> Bcodec.w_u8 w 3
  | Rpc.Bad_request m ->
    Bcodec.w_u8 w 4;
    Bcodec.w_string w m
  | Rpc.Io_error m ->
    Bcodec.w_u8 w 5;
    Bcodec.w_string w m

let r_error r : Rpc.error =
  match Bcodec.r_u8 r with
  | 0 -> Rpc.Not_found
  | 1 -> Rpc.Permission_denied
  | 2 -> Rpc.Object_deleted
  | 3 -> Rpc.No_space
  | 4 -> Rpc.Bad_request (Bcodec.r_string r)
  | 5 -> Rpc.Io_error (Bcodec.r_string r)
  | n -> fail (Printf.sprintf "bad error tag %d" n)

(* A decoded element count can never exceed the bytes left in the
   payload (every element is at least one byte), so checking it first
   bounds the List.init allocation by the frame size. *)
let checked_count r n =
  if n < 0 || n > Bcodec.remaining r then fail (Printf.sprintf "count %d exceeds payload" n)

let w_audit_record w (a : Audit.record) =
  Bcodec.w_i64 w a.Audit.at;
  w_id w a.Audit.user;
  w_id w a.Audit.client;
  Bcodec.w_string w a.Audit.op;
  Bcodec.w_i64 w a.Audit.oid;
  Bcodec.w_string w a.Audit.info;
  w_bool w a.Audit.ok

let r_audit_record r : Audit.record =
  let at = Bcodec.r_i64 r in
  let user = r_id r in
  let client = r_id r in
  let op = Bcodec.r_string r in
  let oid = Bcodec.r_i64 r in
  let info = Bcodec.r_string r in
  let ok = r_bool r in
  { Audit.at; user; client; op; oid; info; ok }

let w_resp w (resp : Rpc.resp) =
  match resp with
  | Rpc.R_unit -> Bcodec.w_u8 w 0
  | Rpc.R_oid oid ->
    Bcodec.w_u8 w 1;
    Bcodec.w_i64 w oid
  | Rpc.R_data b ->
    Bcodec.w_u8 w 2;
    Bcodec.w_bytes w b
  | Rpc.R_size n ->
    Bcodec.w_u8 w 3;
    Bcodec.w_int w n
  | Rpc.R_attr b ->
    Bcodec.w_u8 w 4;
    Bcodec.w_bytes w b
  | Rpc.R_acl e ->
    Bcodec.w_u8 w 5;
    w_entry w e
  | Rpc.R_names names ->
    Bcodec.w_u8 w 6;
    Bcodec.w_int w (List.length names);
    List.iter (Bcodec.w_string w) names
  | Rpc.R_audit records ->
    Bcodec.w_u8 w 7;
    Bcodec.w_int w (List.length records);
    List.iter (w_audit_record w) records
  | Rpc.R_verify res ->
    Bcodec.w_u8 w 9;
    Chain.write_result w res
  | Rpc.R_error e ->
    Bcodec.w_u8 w 8;
    w_error w e

let r_resp r : Rpc.resp =
  match Bcodec.r_u8 r with
  | 0 -> Rpc.R_unit
  | 1 -> Rpc.R_oid (Bcodec.r_i64 r)
  | 2 -> Rpc.R_data (Bcodec.r_bytes r)
  | 3 -> Rpc.R_size (Bcodec.r_int r)
  | 4 -> Rpc.R_attr (Bcodec.r_bytes r)
  | 5 -> Rpc.R_acl (r_entry r)
  | 6 ->
    let n = Bcodec.r_int r in
    checked_count r n;
    Rpc.R_names (List.init n (fun _ -> Bcodec.r_string r))
  | 7 ->
    let n = Bcodec.r_int r in
    checked_count r n;
    Rpc.R_audit (List.init n (fun _ -> r_audit_record r))
  | 8 -> Rpc.R_error (r_error r)
  | 9 -> Rpc.R_verify (r_verify_result r)
  | n -> fail (Printf.sprintf "bad response tag %d" n)

(* ------------------------------------------------------------------ *)
(* Frame encoding                                                      *)

let kind_code = function
  | Hello _ -> 0
  | Hello_ack _ -> 1
  | Request _ -> 2
  | Response _ -> 3
  | Proto_error _ -> 4
  | Stat _ -> 5
  | Stat_ack _ -> 6
  | Goodbye -> 7
  | Batch _ -> 8
  | Batch_reply _ -> 9

let frame_xid = function
  | Hello _ | Hello_ack _ | Goodbye -> 0L
  | Request { xid; _ } | Response { xid; _ } | Proto_error { xid; _ } | Stat { xid }
  | Stat_ack { xid; _ } | Batch { xid; _ } | Batch_reply { xid; _ } ->
    xid

let payload_of v = function
  | Hello { version; claim } ->
    let w = Bcodec.writer () in
    Bcodec.w_u16 w version;
    w_id w claim;
    Bcodec.contents w
  | Hello_ack { version; identity; now } ->
    let w = Bcodec.writer () in
    Bcodec.w_u16 w version;
    w_id w identity;
    Bcodec.w_i64 w now;
    Bcodec.contents w
  | Request { xid = _; cred; sync; req } ->
    let w = Bcodec.writer () in
    w_cred w cred;
    w_bool w sync;
    w_req w req;
    Bcodec.contents w
  | Response { xid = _; resp; now; lease } ->
    let w = Bcodec.writer () in
    w_resp w resp;
    (* Server-clock + lease piggyback only exists in the v3 payload. *)
    if v >= 3 then begin
      Bcodec.w_i64 w now;
      Bcodec.w_i64 w lease
    end;
    Bcodec.contents w
  | Proto_error { xid = _; message } ->
    let w = Bcodec.writer () in
    Bcodec.w_string w message;
    Bcodec.contents w
  | Stat _ -> Bytes.empty
  | Stat_ack { xid = _; total; free; now; batch } ->
    let w = Bcodec.writer () in
    Bcodec.w_int w total;
    Bcodec.w_int w free;
    Bcodec.w_i64 w now;
    (* The batch-support advertisement only exists in the v2 payload;
       a v1 peer never learns of it (and could not use it). *)
    if v >= 2 then Bcodec.w_int w batch;
    Bcodec.contents w
  | Goodbye -> Bytes.empty
  | Batch { xid = _; cred; sync; reqs } ->
    let w = Bcodec.writer () in
    w_cred w cred;
    w_bool w sync;
    Bcodec.w_int w (Array.length reqs);
    Array.iter (w_req w) reqs;
    Bcodec.contents w
  | Batch_reply { xid = _; resps; now; leases } ->
    let w = Bcodec.writer () in
    Bcodec.w_int w (Array.length resps);
    Array.iter (w_resp w) resps;
    if v >= 3 then begin
      Bcodec.w_i64 w now;
      (* One lease per response, in order; a short array pads with 0
         (not cacheable) so the frame shape is always n leases. *)
      Array.iteri
        (fun i _ ->
          Bcodec.w_i64 w (if i < Array.length leases then leases.(i) else 0L))
        resps
    end;
    Bcodec.contents w

let encode ?(version = version) frame =
  (match frame with
   | (Batch _ | Batch_reply _) when version < 2 ->
     invalid_arg "Wire.encode: batch frames require protocol version 2"
   | _ -> ());
  let payload = payload_of version frame in
  let plen = Bytes.length payload in
  let b = Bytes.create (overhead + plen) in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set_uint8 b 4 version;
  Bytes.set_uint8 b 5 (kind_code frame);
  Bcodec.set_u16 b 6 0;
  Bcodec.set_i64 b 8 (frame_xid frame);
  Bcodec.set_u32 b 16 plen;
  Bytes.blit payload 0 b header_len plen;
  let crc = Crc32.sub b ~pos:0 ~len:(header_len + plen) in
  Bcodec.set_u32 b (header_len + plen) (Int32.to_int crc land 0xFFFFFFFF);
  b

(* ------------------------------------------------------------------ *)
(* Frame decoding                                                      *)

type decoded = Frame of frame * int | Need_more of int | Corrupt of string

let parse_payload v kind xid payload : frame =
  let r = Bcodec.reader payload in
  let f =
    match kind with
    | 0 ->
      let version = Bcodec.r_u16 r in
      Hello { version; claim = r_id r }
    | 1 ->
      let version = Bcodec.r_u16 r in
      let identity = r_id r in
      Hello_ack { version; identity; now = Bcodec.r_i64 r }
    | 2 ->
      let cred = r_cred r in
      let sync = r_bool r in
      Request { xid; cred; sync; req = r_req r }
    | 3 ->
      let resp = r_resp r in
      let now = if v >= 3 then Bcodec.r_i64 r else 0L in
      let lease = if v >= 3 then Bcodec.r_i64 r else 0L in
      Response { xid; resp; now; lease }
    | 4 -> Proto_error { xid; message = Bcodec.r_string r }
    | 5 -> Stat { xid }
    | 6 ->
      let total = Bcodec.r_int r in
      let free = Bcodec.r_int r in
      let now = Bcodec.r_i64 r in
      let batch = if v >= 2 then Bcodec.r_int r else 0 in
      Stat_ack { xid; total; free; now; batch }
    | 7 -> Goodbye
    | 8 ->
      let cred = r_cred r in
      let sync = r_bool r in
      let n = Bcodec.r_int r in
      checked_count r n;
      Batch { xid; cred; sync; reqs = Array.init n (fun _ -> r_req r) }
    | 9 ->
      let n = Bcodec.r_int r in
      checked_count r n;
      let resps = Array.init n (fun _ -> r_resp r) in
      let now = if v >= 3 then Bcodec.r_i64 r else 0L in
      let leases = if v >= 3 then Array.init n (fun _ -> Bcodec.r_i64 r) else [||] in
      Batch_reply { xid; resps; now; leases }
    | k -> fail (Printf.sprintf "bad frame kind %d" k)
  in
  if Bcodec.remaining r <> 0 then
    fail (Printf.sprintf "%d trailing bytes after payload" (Bcodec.remaining r));
  f

let decode ?(max_frame = max_frame_default) buf ~pos ~avail =
  let reject fmt = Printf.ksprintf (fun m -> Corrupt m) fmt in
  if pos < 0 || avail < 0 || pos + avail > Bytes.length buf then Corrupt "bad decode range"
  else begin
    (* Validate the magic on whatever prefix is present so garbage is
       rejected immediately rather than buffered while "waiting". *)
    let prefix = min avail 4 in
    let rec magic_ok i =
      i >= prefix || (Bytes.get buf (pos + i) = magic.[i] && magic_ok (i + 1))
    in
    if not (magic_ok 0) then reject "bad magic"
    else if avail < header_len then Need_more (header_len - avail)
    else begin
      let v = Bytes.get_uint8 buf (pos + 4) in
      let kind = Bytes.get_uint8 buf (pos + 5) in
      let reserved = Bcodec.get_u16 buf (pos + 6) in
      let xid = Bcodec.get_i64 buf (pos + 8) in
      let plen = Bcodec.get_u32 buf (pos + 16) in
      if v < min_version || v > version then reject "unsupported version %d" v
      else if kind > 9 then reject "bad frame kind %d" kind
      else if kind >= 8 && v < 2 then reject "batch frame in a v%d stream" v
      else if reserved <> 0 then reject "nonzero reserved field"
      else if plen > max_frame then reject "frame payload %d exceeds limit %d" plen max_frame
      else begin
        let total = overhead + plen in
        if avail < total then Need_more (total - avail)
        else begin
          let crc = Crc32.sub buf ~pos ~len:(header_len + plen) in
          let stored = Bcodec.get_u32 buf (pos + header_len + plen) in
          if Int32.to_int crc land 0xFFFFFFFF <> stored then reject "crc mismatch"
          else begin
            let payload = Bytes.sub buf (pos + header_len) plen in
            match parse_payload v kind xid payload with
            | f -> Frame (f, total)
            | exception Reject m -> Corrupt m
            | exception Bcodec.Decode_error m -> Corrupt m
          end
        end
      end
    end
  end
