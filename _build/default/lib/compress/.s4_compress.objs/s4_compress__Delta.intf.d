lib/compress/delta.mli: Bytes
