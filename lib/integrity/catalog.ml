module Bcodec = S4_util.Bcodec

(* The cross-shard integrity catalog: the meta shard of an array keeps
   every member drive's sealed chain head, refreshed at each array-wide
   barrier. A compromised shard can rewrite its own log, but the copy
   of its head living on the meta shard (mirrored when the meta shard
   is) still pins the history it must reproduce — forging it needs a
   SHA-256 preimage. Catalog entries are a floor, not an exact match:
   a member may legitimately run ahead of the catalog (the catalog
   write for barrier N lands inside barrier N itself), so the check is
   "the catalog head must still lie on the member's chain". *)

type entry = { shard : int; replica : int; head : Chain.head; at : int64 }

let magic = 0x5343 (* "CS" *)
let version = 2 (* v2 added the [at] refresh stamp; v1 still decodes *)

let encode entries =
  let w = Bcodec.writer () in
  Bcodec.w_u16 w magic;
  Bcodec.w_u8 w version;
  Bcodec.w_int w (List.length entries);
  List.iter
    (fun e ->
      Bcodec.w_int w e.shard;
      Bcodec.w_int w e.replica;
      Bcodec.w_i64 w e.at;
      Chain.write_head w e.head)
    entries;
  Bcodec.contents w

let decode b =
  if Bytes.length b < 4 then None
  else
    try
      let r = Bcodec.reader b in
      if Bcodec.r_u16 r <> magic then None
      else begin
        let v = Bcodec.r_u8 r in
        if v < 1 || v > version then None
        else begin
          let n = Bcodec.r_int r in
          if n < 0 || n > Bcodec.remaining r then None
          else
            Some
              (List.init n (fun _ ->
                   let shard = Bcodec.r_int r in
                   let replica = Bcodec.r_int r in
                   let at = if v >= 2 then Bcodec.r_i64 r else 0L in
                   let head = Chain.read_head r in
                   { shard; replica; head; at }))
        end
      end
    with Bcodec.Decode_error _ -> None

let find entries ~shard ~replica =
  List.find_map
    (fun e -> if e.shard = shard && e.replica = replica then Some e.head else None)
    entries

let find_entry entries ~shard ~replica =
  List.find_opt (fun e -> e.shard = shard && e.replica = replica) entries

let set entries ~shard ~replica ~at head =
  { shard; replica; head; at }
  :: List.filter (fun e -> not (e.shard = shard && e.replica = replica)) entries

let prune entries ~now ~window ~live =
  let floor = Int64.sub now window in
  List.filter
    (fun e -> live ~shard:e.shard ~replica:e.replica || Int64.compare e.at floor >= 0)
    entries

(* Head-level comparison of a member against its catalog entry. The
   full ancestry proof ([Chain.verify ~from:catalog_head] over the
   member's log) is run by the verify-log path; this quick check
   classifies what attach/fsck can see from the heads alone. *)
type status =
  | Consistent  (** member at or ahead of the catalog floor *)
  | Stale_catalog  (** member ahead: catalog needs refresh (benign) *)
  | Rolled_back  (** member behind the catalog floor: history lost *)
  | Forked  (** same epoch, different hash: history rewritten *)

let check ~catalog ~member =
  let open Chain in
  if member.epoch = catalog.epoch then
    if String.equal member.hash catalog.hash && member.records = catalog.records then Consistent
    else Forked
  else if member.epoch < catalog.epoch || member.records < catalog.records then Rolled_back
  else Stale_catalog
