module Bcodec = S4_util.Bcodec
module Crc32 = S4_util.Crc32

type entry = { oid : int64; seq : int; time : int64; kind : int; payload : Bytes.t }

let magic = 0x424A (* "JB" *)

let varint_size v =
  let rec loop v n = if v < 0x80 then n else loop (v lsr 7) (n + 1) in
  loop v 1

let entry_size e = 8 + varint_size e.seq + 8 + 1 + varint_size (Bytes.length e.payload) + Bytes.length e.payload

(* magic(2) + prev(8) + count(up to 3) + crc(4) *)
let header_size = 2 + 8 + 3 + 4

let fits ~block_size ~current e = header_size + current + entry_size e <= block_size

let encode ~block_size ~prev entries =
  let w = Bcodec.writer ~capacity:block_size () in
  Bcodec.w_u16 w magic;
  Bcodec.w_i64 w (Int64.of_int prev);
  Bcodec.w_int w (List.length entries);
  let emit e =
    Bcodec.w_i64 w e.oid;
    Bcodec.w_int w e.seq;
    Bcodec.w_i64 w e.time;
    Bcodec.w_u8 w e.kind;
    Bcodec.w_bytes w e.payload
  in
  List.iter emit entries;
  let body = Bcodec.contents w in
  if Bcodec.length w + 4 > block_size then invalid_arg "Jblock.encode: entries do not fit";
  let out = Bytes.make block_size '\000' in
  Bytes.blit body 0 out 0 (Bytes.length body);
  let crc = Crc32.sub out ~pos:0 ~len:(block_size - 4) in
  Bcodec.set_u32 out (block_size - 4) (Int32.to_int crc land 0xFFFFFFFF);
  out

let decode b =
  let n = Bytes.length b in
  if n < header_size then None
  else if Bcodec.get_u16 b 0 <> magic then None
  else begin
    let stored = Bcodec.get_u32 b (n - 4) in
    let crc = Int32.to_int (Crc32.sub b ~pos:0 ~len:(n - 4)) land 0xFFFFFFFF in
    if stored <> crc then None
    else begin
      try
        let r = Bcodec.reader ~pos:2 b in
        let prev = Int64.to_int (Bcodec.r_i64 r) in
        let count = Bcodec.r_int r in
        let read_entry () =
          let oid = Bcodec.r_i64 r in
          let seq = Bcodec.r_int r in
          let time = Bcodec.r_i64 r in
          let kind = Bcodec.r_u8 r in
          let payload = Bcodec.r_bytes r in
          { oid; seq; time; kind; payload }
        in
        let entries = List.init count (fun _ -> read_entry ()) in
        Some (prev, entries)
      with Bcodec.Decode_error _ -> None
    end
  end
