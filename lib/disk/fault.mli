(** Fault-injection policy for the simulated disk.

    A policy is consulted by {!Sim_disk} on every read and write and
    decides — deterministically, from an explicit {!S4_util.Rng} —
    whether the request succeeds, fails transiently (a retry may
    succeed), fails permanently, persists only a torn prefix of its
    sectors, silently corrupts a bit, or crashes the whole device.

    Crashes model pulling the power cord: the scheduled write persists
    an arbitrary sector prefix (a torn write), {!Crashed} is raised,
    and every subsequent request on the same disk raises {!Crashed}
    until the policy is detached. The crash-recovery harness
    ({!S4_tools.Crashtest}) catches the exception, detaches the
    policy, and reattaches a fresh drive to the surviving contents. *)

exception Read_fault of { lba : int; transient : bool }
exception Write_fault of { lba : int; transient : bool }

exception Crashed
(** The device hit a scheduled crash point (or is being used after
    one). In-memory state above the disk must be discarded; only the
    persisted sectors survive. *)

type config = {
  read_fault_rate : float;  (** permanent read failures, per request *)
  transient_read_rate : float;
  write_fault_rate : float;  (** permanent write failures, per request *)
  transient_write_rate : float;
  torn_write_rate : float;
      (** silently persist only a random proper prefix of the request *)
  corrupt_rate : float;  (** silently flip one stored bit, per write *)
}

val quiet : config
(** All rates zero: faults only via {!schedule_crash}/{!fail_next}. *)

val default : config
(** Mild background fault rates for sweeps. *)

type stats = {
  mutable ops : int;
  mutable read_faults : int;
  mutable write_faults : int;
  mutable torn_writes : int;
  mutable corruptions : int;
  mutable crashes : int;
}

type t

val create : ?config:config -> S4_util.Rng.t -> t
(** The policy owns the generator: equal seeds and request streams
    yield identical fault schedules. *)

val config : t -> config
val stats : t -> stats

val schedule_crash : t -> after_writes:int -> unit
(** Crash the device on the [after_writes]-th subsequent write (1 =
    the very next write). The crashing write persists a random sector
    prefix, then raises {!Crashed}. *)

val cancel_crash : t -> unit
val crashed : t -> bool

val fail_next : t -> writes:int -> transient:bool -> unit
(** Force the next [writes] write requests to fail (deterministic
    one-shot injection, independent of the configured rates). *)

(** {1 Sim_disk interface} — callers other than {!Sim_disk} rarely
    need these. *)

type write_outcome =
  | W_ok
  | W_torn of int  (** persist this many sectors, report success *)
  | W_fail of bool  (** raise {!Write_fault}; [true] = transient *)
  | W_crash of int  (** persist this prefix, then raise {!Crashed} *)
  | W_corrupt  (** persist everything, then flip one stored bit *)

type read_outcome = R_ok | R_fail of bool

val on_write : t -> sectors:int -> write_outcome
val on_read : t -> sectors:int -> read_outcome

val corrupt_bit : t -> Bytes.t -> unit
(** Flip one random bit in place (counts toward {!stats}). *)
