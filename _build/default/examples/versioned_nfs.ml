(* A development workload over the S4-backed NFS mount: exercise the
   Figure-1a configuration (client-side translator, S4 RPC over the
   network), then browse the version history the drive accumulated.

   Run with: dune exec examples/versioned_nfs.exe *)

module Simclock = S4_util.Simclock
module Geometry = S4_disk.Geometry
module Sim_disk = S4_disk.Sim_disk
module Net = S4_disk.Net
module Drive = S4.Drive
module Client = S4.Client
module Rpc = S4.Rpc
module N = S4_nfs.Nfs_types
module Translator = S4_nfs.Translator
module History = S4_tools.History

let write tr path s =
  match Translator.write_file tr path (Bytes.of_string s) with
  | Ok fh -> fh
  | Error e -> Format.kasprintf failwith "write %s: %a" path N.pp_error e

let () =
  let clock = Simclock.create () in
  let disk =
    Sim_disk.create ~geometry:(Geometry.with_capacity Geometry.cheetah_9gb ~bytes:(128 * 1024 * 1024)) clock
  in
  let drive = Drive.format disk in
  let net = Net.create clock in
  let client = Client.connect net drive in
  let tr = Translator.mount (Translator.Remote client) in

  (* Simulate a morning of editing: the same source file written over
     and over, the way editors and build systems actually behave. *)
  let snapshots = ref [] in
  for rev = 1 to 8 do
    let text =
      Printf.sprintf "(* revision %d *)\nlet version = %d\nlet rec fib n = if n < 2 then n else fib (n-1) + fib (n-2)\n%s"
        rev rev
        (String.concat "\n" (List.init rev (fun i -> Printf.sprintf "let helper_%d x = x + %d" i i)))
    in
    let fh = write tr "src/main.ml" text in
    snapshots := (rev, Simclock.now clock, fh) :: !snapshots;
    Simclock.advance clock (Simclock.of_seconds 300.0)
  done;
  let _, _, fh = List.hd !snapshots in

  Printf.printf "wrote 8 revisions of src/main.ml over a simulated morning\n";
  Printf.printf "NFS ops -> %d S4 RPCs; network moved %d bytes\n\n"
    (Translator.rpc_count tr)
    (Net.stats net).Net.bytes_sent;

  (* Every modification is a version: list the instants the drive can
     reproduce. *)
  let h = History.create drive in
  let times = History.version_times h fh in
  Printf.printf "the drive holds %d distinct version instants for that file\n" (List.length times);

  (* "Time-enhanced cat": reconstruct any revision. *)
  List.iter
    (fun (_rev, at, fh) ->
      match History.cat h ~at fh with
      | Ok b ->
        let first_line = List.hd (String.split_on_char '\n' (Bytes.to_string b)) in
        Printf.printf "  at t=%-13Ld %s (%d bytes)\n" at first_line (Bytes.length b)
      | Error m -> failwith m)
    (List.rev !snapshots);

  (* A user accidentally deletes the file; self-securing storage makes
     this a non-event. *)
  (match Translator.lookup_path tr "src" with
   | Ok (dir, _) -> ignore (Translator.handle tr (N.Remove { dir; name = "main.ml" }))
   | Error _ -> failwith "lookup src");
  Printf.printf "\nfile deleted by accident...\n";
  let last_good = List.hd !snapshots in
  let _, at, _ = last_good in
  (match History.cat h ~at fh with
   | Ok b ->
     ignore (write tr "src/main.ml" (Bytes.to_string b));
     Printf.printf "...and restored from the history pool (%d bytes)\n" (Bytes.length b)
   | Error m -> failwith m);

  Format.printf "\n%a@." Drive.pp_stats drive
