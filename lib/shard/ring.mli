(** Consistent-hash ring with virtual nodes (object → shard placement).

    Placement is a pure, deterministic function of (oid, membership):
    the same ring contents always place the same oid on the same
    shard, across process runs. Adding a member reassigns only the
    keys that land on the new member's arcs (~1/N of the space); no
    key moves between two pre-existing members. *)

type t

val create : ?vnodes:int -> unit -> t
(** [vnodes] points per member on the hash circle (default 64): more
    points → smoother balance, slower rebuild. *)

val add : t -> int -> unit
(** Add a member shard id. @raise Invalid_argument if present. *)

val remove : t -> int -> unit
val members : t -> int list
val vnodes : t -> int
val is_empty : t -> bool

val owner : t -> int64 -> int
(** The member owning this oid. @raise Invalid_argument on an empty
    ring. *)

val owner_opt : t -> int64 -> int option
