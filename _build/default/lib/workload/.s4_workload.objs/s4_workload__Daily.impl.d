lib/workload/daily.ml: Bytes Format Int64 List Printf S4 S4_nfs S4_seglog S4_store S4_util Systems
