(* Tests for the capacity projection, the differencing study, and the
   machine-readable result recorder. *)

module Capacity = S4_analysis.Capacity
module Diffstudy = S4_analysis.Diffstudy
module Report = S4_analysis.Report
module Daily = S4_workload.Daily

let check = Alcotest.check

(* --- Capacity projection (Figure 7 arithmetic) -------------------------- *)

let test_paper_numbers () =
  (* 10 GB / 143 MB/day ~ 71.6 days: the paper says "over 70 days". *)
  let afs = Capacity.project Daily.afs in
  check Alcotest.bool "AFS > 70 days" true (afs.Capacity.baseline_days > 70.0);
  check Alcotest.bool "AFS < 75 days" true (afs.Capacity.baseline_days < 75.0);
  (* 10 GB / 1 GB/day = 10 days: "10 days worth of history". *)
  let nt = Capacity.project Daily.nt in
  check (Alcotest.float 0.01) "NT 10 days" 10.0 nt.Capacity.baseline_days;
  (* 10 GB / 110 MB/day ~ 93 days: "over 90 days". *)
  let santry = Capacity.project Daily.santry in
  check Alcotest.bool "Santry > 90 days" true (santry.Capacity.baseline_days > 90.0)

let test_differencing_extends_window () =
  let p = Capacity.project Daily.afs in
  check (Alcotest.float 0.1) "3x" (p.Capacity.baseline_days *. 3.0) p.Capacity.differenced_days;
  check (Alcotest.float 0.1) "5x" (p.Capacity.baseline_days *. 5.0) p.Capacity.compressed_days

let test_paper_range_50_to_470_days () =
  (* "a 10GB history pool can provide a detection window of between 50
     and 470 days" — NT compressed is the lower end, Santry compressed
     the upper. *)
  let ps = Capacity.project_all () in
  let all_compressed = List.map (fun p -> p.Capacity.compressed_days) ps in
  let mn = List.fold_left Float.min infinity all_compressed in
  let mx = List.fold_left Float.max 0.0 all_compressed in
  check Alcotest.bool "lower end ~50" true (mn >= 45.0 && mn <= 55.0);
  check Alcotest.bool "upper end ~470" true (mx >= 440.0 && mx <= 500.0)

let test_custom_pool () =
  let p = Capacity.project ~pool_bytes:(20 * 1024 * 1024 * 1024) Daily.nt in
  check (Alcotest.float 0.01) "double pool, double days" 20.0 p.Capacity.baseline_days

let test_invalid_factors_rejected () =
  check Alcotest.bool "diff<1 rejected" true
    (try
       ignore (Capacity.project ~diff_factor:0.5 Daily.nt);
       false
     with Invalid_argument _ -> true)

(* --- Differencing study (Section 5.2) ----------------------------------- *)

let test_diffstudy_runs () =
  let r = Diffstudy.run ~files:15 ~days:4 () in
  check Alcotest.int "4 days" 4 (List.length r.Diffstudy.days);
  check Alcotest.bool "raw biggest" true
    (r.Diffstudy.total_raw > r.Diffstudy.total_delta
     && r.Diffstudy.total_delta >= r.Diffstudy.total_delta_lz)

let test_diffstudy_paper_magnitudes () =
  (* The paper measured ~200% efficiency from differencing and ~500%
     with compression. Synthetic tree, same ballpark expected. *)
  let r = Diffstudy.run ~files:40 ~days:7 () in
  check Alcotest.bool
    (Printf.sprintf "diff efficiency %.1f in [2, 8]" r.Diffstudy.diff_efficiency)
    true
    (r.Diffstudy.diff_efficiency >= 2.0 && r.Diffstudy.diff_efficiency <= 8.0);
  check Alcotest.bool
    (Printf.sprintf "comp efficiency %.1f in [4, 25]" r.Diffstudy.comp_efficiency)
    true
    (r.Diffstudy.comp_efficiency >= 4.0 && r.Diffstudy.comp_efficiency <= 25.0);
  check Alcotest.bool "compression adds on top of differencing" true
    (r.Diffstudy.comp_efficiency > r.Diffstudy.diff_efficiency)

let test_diffstudy_deterministic () =
  let a = Diffstudy.run ~files:10 ~days:3 () in
  let b = Diffstudy.run ~files:10 ~days:3 () in
  check Alcotest.int "same raw" a.Diffstudy.total_raw b.Diffstudy.total_raw;
  check Alcotest.int "same delta" a.Diffstudy.total_delta b.Diffstudy.total_delta

let test_diffstudy_day0_is_full () =
  let r = Diffstudy.run ~files:10 ~days:3 () in
  match r.Diffstudy.days with
  | d0 :: _ -> check Alcotest.int "day 0 stored whole" d0.Diffstudy.tree_bytes d0.Diffstudy.delta_bytes
  | [] -> Alcotest.fail "no days"

let test_diffstudy_more_churn_bigger_deltas () =
  let lo = Diffstudy.run ~files:20 ~days:5 ~churn:0.05 () in
  let hi = Diffstudy.run ~files:20 ~days:5 ~churn:0.6 () in
  check Alcotest.bool "churn grows deltas" true
    (hi.Diffstudy.diff_efficiency < lo.Diffstudy.diff_efficiency)

(* --- Result recorder (Report.record / write_json) ----------------------- *)

let with_dump f =
  (* record+write_json into a temp file, return file contents; the
     recorder is global state, so always reset around the test. *)
  let path = Filename.temp_file "s4_report" ".json" in
  Report.reset ();
  Fun.protect
    ~finally:(fun () ->
      Report.reset ();
      Sys.remove path)
    (fun () ->
      f path;
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s)

let contains ~sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_report_label_escaping () =
  let s =
    with_dump (fun path ->
        Report.record ~experiment:{|exp"one|} ~label:"quote\" back\\slash\nnewline\x01ctl"
          [ ({|key"q|}, 1.0) ];
        Report.write_json path)
  in
  check Alcotest.bool "experiment quote escaped" true (contains ~sub:{|"exp\"one"|} s);
  check Alcotest.bool "label fully escaped" true
    (contains ~sub:{|"quote\" back\\slash\nnewline\u0001ctl"|} s);
  check Alcotest.bool "key quote escaped" true (contains ~sub:{|"key\"q": 1|} s);
  check Alcotest.bool "no raw control chars" true
    (String.for_all (fun c -> Char.code c >= 32 || c = '\n') s)

let test_report_empty_dump () =
  let s = with_dump (fun path -> Report.write_json path) in
  check Alcotest.string "empty recorder dumps an empty object" "{\n}\n" s

let test_report_experiment_filtering () =
  let s =
    with_dump (fun path ->
        Report.record ~experiment:"alpha" [ ("a", 1.0) ];
        Report.record ~experiment:"beta" [ ("b", 2.0) ];
        Report.record ~experiment:"alpha" [ ("a", 3.0) ];
        Report.record ~experiment:"gamma" [ ("c", 4.0) ];
        Report.write_json ~experiments:[ "alpha"; "gamma" ] path)
  in
  check Alcotest.bool "keeps alpha" true (contains ~sub:{|"alpha"|} s);
  check Alcotest.bool "keeps gamma" true (contains ~sub:{|"gamma"|} s);
  check Alcotest.bool "drops beta" false (contains ~sub:{|"beta"|} s);
  check Alcotest.bool "keeps both alpha rows" true
    (contains ~sub:{|{"a": 1}|} s && contains ~sub:{|{"a": 3}|} s)

let test_report_row_order_and_floats () =
  let s =
    with_dump (fun path ->
        Report.record ~experiment:"e" ~label:"r0" [ ("x", 1.5); ("nan", Float.nan) ];
        Report.record ~experiment:"e" [ ("x", 2.0) ];
        Report.write_json path)
  in
  check Alcotest.bool "labelled row first (record order kept)" true
    (contains ~sub:{|{"label": "r0", "x": 1.5, "nan": null},|} s);
  check Alcotest.bool "unlabelled row plain" true (contains ~sub:{|{"x": 2}|} s)

let () =
  Alcotest.run "s4_analysis"
    [
      ( "capacity",
        [
          Alcotest.test_case "paper numbers" `Quick test_paper_numbers;
          Alcotest.test_case "differencing factors" `Quick test_differencing_extends_window;
          Alcotest.test_case "50-470 day range" `Quick test_paper_range_50_to_470_days;
          Alcotest.test_case "custom pool" `Quick test_custom_pool;
          Alcotest.test_case "invalid factors" `Quick test_invalid_factors_rejected;
        ] );
      ( "diffstudy",
        [
          Alcotest.test_case "runs" `Quick test_diffstudy_runs;
          Alcotest.test_case "paper magnitudes" `Slow test_diffstudy_paper_magnitudes;
          Alcotest.test_case "deterministic" `Quick test_diffstudy_deterministic;
          Alcotest.test_case "day 0 full" `Quick test_diffstudy_day0_is_full;
          Alcotest.test_case "churn sensitivity" `Slow test_diffstudy_more_churn_bigger_deltas;
        ] );
      ( "report",
        [
          Alcotest.test_case "label escaping" `Quick test_report_label_escaping;
          Alcotest.test_case "empty dump" `Quick test_report_empty_dump;
          Alcotest.test_case "experiment filtering" `Quick test_report_experiment_filtering;
          Alcotest.test_case "row order and floats" `Quick test_report_row_order_and_floats;
        ] );
    ]
