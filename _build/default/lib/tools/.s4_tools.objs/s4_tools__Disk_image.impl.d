lib/tools/disk_image.ml: Buffer Bytes Fun Int32 Int64 S4_disk S4_util String
