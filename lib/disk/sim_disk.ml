module Simclock = S4_util.Simclock
module Histogram = S4_util.Histogram
module Trace = S4_obs.Trace

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable sectors_read : int;
  mutable sectors_written : int;
  mutable seeks : int;
  mutable sequential : int;
  mutable busy_ns : int64;
  read_latency : Histogram.t;
  write_latency : Histogram.t;
}

let fresh_stats () =
  {
    reads = 0;
    writes = 0;
    sectors_read = 0;
    sectors_written = 0;
    seeks = 0;
    sequential = 0;
    busy_ns = 0L;
    read_latency = Histogram.create ();
    write_latency = Histogram.create ();
  }

(* Where sector contents live: the sparse in-memory table (simulation)
   or a real host file (durability). Timing, stats, fault injection
   and the whole stack above are identical over both. *)
type backing =
  | Mem of (int, Bytes.t) Hashtbl.t  (* sector lba -> sector bytes *)
  | File of File_disk.t

type t = {
  geometry : Geometry.t;
  clock : Simclock.t;
  backing : backing;
  mutable head : int;  (* lba just past the last request *)
  mutable stats : stats;
  mutable phantom : bool;
  mutable phantom_ns : int64;
  mutable fault : Fault.t option;
  mutable head_provider : (unit -> S4_integrity.Chain.head option) option;
      (* the drive above registers this; barriers snapshot its result *)
  mutable saved_head : S4_integrity.Chain.head option;
      (* device-held anchor as of the last barrier (or image load) *)
}

let create ?(geometry = Geometry.cheetah_9gb) clock =
  {
    geometry;
    clock;
    backing = Mem (Hashtbl.create 4096);
    head = 0;
    stats = fresh_stats ();
    phantom = false;
    phantom_ns = 0L;
    fault = None;
    head_provider = None;
    saved_head = None;
  }

let of_file file =
  let clock = Simclock.create () in
  Simclock.set clock (File_disk.clock_ns file);
  {
    geometry = File_disk.geometry file;
    clock;
    backing = File file;
    head = 0;
    stats = fresh_stats ();
    phantom = false;
    phantom_ns = 0L;
    fault = None;
    head_provider = None;
    saved_head = File_disk.head file;
  }

let file_backing t = match t.backing with File f -> Some f | Mem _ -> None

let set_head_provider t f = t.head_provider <- Some f
let current_head t = match t.head_provider with Some f -> f () | None -> t.saved_head
let saved_head t = t.saved_head
let set_saved_head t h = t.saved_head <- h

let barrier t =
  t.saved_head <- current_head t;
  match t.backing with
  | Mem _ -> ()
  | File f ->
    File_disk.set_head f t.saved_head;
    File_disk.sync f ~clock_ns:(Simclock.now t.clock)

let close t = match t.backing with Mem _ -> () | File f -> File_disk.close f

let set_fault t policy = t.fault <- policy
let fault t = t.fault

let geometry t = t.geometry
let clock t = t.clock
let capacity_sectors t = t.geometry.Geometry.sectors
let capacity_bytes t = Geometry.capacity_bytes t.geometry
let stats t = t.stats
let reset_stats t = t.stats <- fresh_stats ()
let busy_seconds t = Int64.to_float t.stats.busy_ns /. 1e9

let check_range t ~lba ~sectors =
  if lba < 0 || sectors <= 0 || lba + sectors > capacity_sectors t then
    invalid_arg
      (Printf.sprintf "Sim_disk: range [%d, %d) outside [0, %d)" lba (lba + sectors)
         (capacity_sectors t))

(* Service time in ms for a request at [lba] of [sectors], given the
   current head position. Sequential continuation pays transfer only;
   everything else pays seek (distance-dependent) plus average
   rotational latency (half a revolution) plus transfer. *)
let service_ms t ~tcq ~lba ~sectors =
  let g = t.geometry in
  let bytes = sectors * g.Geometry.sector_size in
  let transfer = Geometry.transfer_ms g ~bytes in
  if lba = t.head then (transfer, true)
  else begin
    let distance = abs (lba - t.head) in
    let seek = Geometry.seek_ms g ~distance_sectors:distance in
    let rotation = Geometry.rotation_ms g /. 2.0 in
    let rotation = if tcq then rotation /. 2.0 else rotation in
    (seek +. rotation +. transfer, false)
  end

let account t ?(tcq = false) ~lba ~sectors ~is_read () =
  let ms, sequential = service_ms t ~tcq ~lba ~sectors in
  let ns = Simclock.of_ms ms in
  let t0 = if Trace.on () then Simclock.now t.clock else 0L in
  (if t.phantom then begin
     t.phantom_ns <- Int64.add t.phantom_ns ns;
     t.head <- lba + sectors
   end
   else begin
     Simclock.advance t.clock ns;
     let s = t.stats in
     s.busy_ns <- Int64.add s.busy_ns ns;
     if sequential then s.sequential <- s.sequential + 1 else s.seeks <- s.seeks + 1;
     if is_read then begin
       s.reads <- s.reads + 1;
       s.sectors_read <- s.sectors_read + sectors;
       Histogram.add s.read_latency ms
     end
     else begin
       s.writes <- s.writes + 1;
       s.sectors_written <- s.sectors_written + sectors;
       Histogram.add s.write_latency ms
     end;
     t.head <- lba + sectors
   end);
  if Trace.on () then
    (* Phantom-mode transfers leave the shared clock alone, so the
       span is instantaneous; the service time rides in [disk_ns]. *)
    Trace.emit Trace.Disk
      ~kind:(if is_read then "read" else "write")
      ~start_ns:t0 ~stop_ns:(Simclock.now t.clock)
      ~bytes:(sectors * t.geometry.Geometry.sector_size)
      ~disk_ns:ns ()

let read t ~lba ~sectors =
  check_range t ~lba ~sectors;
  (match t.fault with
   | None -> ()
   | Some f ->
     (match Fault.on_read f ~sectors with
      | Fault.R_ok -> ()
      | Fault.R_fail transient ->
        (* The failed attempt still spent positioning time. *)
        account t ~lba ~sectors ~is_read:true ();
        raise (Fault.Read_fault { lba; transient })));
  account t ~lba ~sectors ~is_read:true ()

let store_data t ~lba ~sectors data =
  let ss = t.geometry.Geometry.sector_size in
  (match data with
   | Some b when Bytes.length b <> sectors * ss ->
     invalid_arg "Sim_disk.write: data length mismatch"
   | _ -> ());
  match t.backing with
  | Mem contents ->
    (match data with
     | None ->
       for i = lba to lba + sectors - 1 do
         Hashtbl.remove contents i
       done
     | Some b ->
       for i = 0 to sectors - 1 do
         Hashtbl.replace contents (lba + i) (Bytes.sub b (i * ss) ss)
       done)
  | File f ->
    (match data with
     | None -> File_disk.erase f ~lba ~sectors
     | Some b -> File_disk.write f ~lba b)

(* Persist only the first [k] sectors of the request, leaving the tail
   untouched on the platter (torn write / crash mid-transfer). *)
let store_prefix t ~lba ~k data =
  if k > 0 then begin
    let ss = t.geometry.Geometry.sector_size in
    let data = Option.map (fun b -> Bytes.sub b 0 (k * ss)) data in
    store_data t ~lba ~sectors:k data
  end

let write t ?tcq ?data ~lba ~sectors () =
  check_range t ~lba ~sectors;
  (match t.fault with
   | None -> store_data t ~lba ~sectors data
   | Some f ->
     (match Fault.on_write f ~sectors with
      | Fault.W_ok -> store_data t ~lba ~sectors data
      | Fault.W_torn k -> store_prefix t ~lba ~k data
      | Fault.W_corrupt ->
        (* Flip one bit of the payload before it reaches the platter;
           nothing above the disk notices until a CRC check does. *)
        let data =
          Option.map
            (fun b ->
              let b = Bytes.copy b in
              Fault.corrupt_bit f b;
              b)
            data
        in
        store_data t ~lba ~sectors data
      | Fault.W_fail transient ->
        account t ?tcq ~lba ~sectors ~is_read:false ();
        raise (Fault.Write_fault { lba; transient })
      | Fault.W_crash k ->
        store_prefix t ~lba ~k data;
        raise Fault.Crashed));
  account t ?tcq ~lba ~sectors ~is_read:false ()

let peek t ~lba ~sectors =
  check_range t ~lba ~sectors;
  match t.backing with
  | Mem contents ->
    let ss = t.geometry.Geometry.sector_size in
    let out = Bytes.make (sectors * ss) '\000' in
    for i = 0 to sectors - 1 do
      (match Hashtbl.find_opt contents (lba + i) with
       | Some sector -> Bytes.blit sector 0 out (i * ss) ss
       | None -> ())
    done;
    out
  | File f -> File_disk.read f ~lba ~sectors

let poke t ~lba ~data =
  let ss = t.geometry.Geometry.sector_size in
  if Bytes.length data mod ss <> 0 then invalid_arg "Sim_disk.poke: not sector aligned";
  let sectors = Bytes.length data / ss in
  check_range t ~lba ~sectors;
  store_data t ~lba ~sectors (Some data)

let read_bytes t ~lba ~sectors =
  read t ~lba ~sectors;
  peek t ~lba ~sectors

let set_phantom t v = t.phantom <- v
let phantom_ns t = t.phantom_ns
let reset_phantom t = t.phantom_ns <- 0L

let pp_stats ppf t =
  let s = t.stats in
  Format.fprintf ppf
    "disk: %d reads (%d sect), %d writes (%d sect), %d seeks, %d seq, busy %.3f s"
    s.reads s.sectors_read s.writes s.sectors_written s.seeks s.sequential
    (busy_seconds t)
