(* Tests for the sharded scale-out array: consistent-hash placement
   stability, the router's drive-shaped surface (oracle: a bare drive
   fed the same op stream), fan-out semantics, degraded-shard
   reporting, and history-preserving online rebalancing. *)

module Simclock = S4_util.Simclock
module Geometry = S4_disk.Geometry
module Sim_disk = S4_disk.Sim_disk
module Fault = S4_disk.Fault
module Rng = S4_util.Rng
module Drive = S4.Drive
module Rpc = S4.Rpc
module Store = S4_store.Obj_store
module Mirror = S4_multi.Mirror
module Ring = S4_shard.Ring
module Router = S4_shard.Router

let check = Alcotest.check
let alice = Rpc.user_cred ~user:1 ~client:1

let geom mb = Geometry.with_capacity Geometry.cheetah_9gb ~bytes:(mb * 1024 * 1024)

let content_config =
  { Drive.default_config with store = { Store.default_config with keep_data = true } }

let mk_drive ?(mb = 64) clock =
  Drive.format ~config:content_config (Sim_disk.create ~geometry:(geom mb) clock)

let mk_array ?vnodes ?(mb = 64) n =
  let clock = Simclock.create () in
  let members = List.init n (fun i -> (i, Router.Single (mk_drive ~mb clock))) in
  (clock, Router.create ?vnodes members)

let expect_oid = function
  | Rpc.R_oid oid -> oid
  | r -> Alcotest.failf "expected oid, got %a" Rpc.pp_resp r

let expect_unit = function
  | Rpc.R_unit -> ()
  | r -> Alcotest.failf "expected unit, got %a" Rpc.pp_resp r

let create r = expect_oid (Router.handle r alice (Rpc.Create { acl = [] }))

let write r oid s =
  expect_unit
    (Router.handle r alice
       (Rpc.Write { oid; off = 0; len = String.length s; data = Some (Bytes.of_string s) }))

let read_str ?at r oid =
  match Router.handle r alice (Rpc.Read { oid; off = 0; len = 1 lsl 16; at }) with
  | Rpc.R_data b -> Bytes.to_string b
  | r -> Alcotest.failf "read: %a" Rpc.pp_resp r

let holder_store r oid =
  match Router.member r (Router.shard_of r oid) with
  | Router.Single d -> Drive.store d
  | Router.Mirrored m -> Drive.store (Mirror.drive m Mirror.Primary)

let shard_disk r id =
  match Router.member r id with
  | Router.Single d -> S4_seglog.Log.disk (Drive.log d)
  | Router.Mirrored m -> S4_seglog.Log.disk (Drive.log (Mirror.drive m Mirror.Primary))

(* --- Ring ------------------------------------------------------------- *)

let test_ring_placement_stability () =
  let ring = Ring.create () in
  List.iter (Ring.add ring) [ 0; 1; 2; 3 ];
  let oids = List.init 1000 (fun i -> Int64.of_int (i + 2)) in
  let before = List.map (fun oid -> (oid, Ring.owner ring oid)) oids in
  (* Every member owns a nontrivial share of the space. *)
  List.iter
    (fun m ->
      let share = List.length (List.filter (fun (_, o) -> o = m) before) in
      if share < 50 then Alcotest.failf "member %d owns only %d/1000 keys" m share)
    [ 0; 1; 2; 3 ];
  (* Adding a member only captures keys: no key moves between two
     pre-existing members. *)
  Ring.add ring 4;
  let moved = ref 0 in
  List.iter
    (fun (oid, old) ->
      let now = Ring.owner ring oid in
      if now <> old then begin
        check Alcotest.int "moved keys go to the new member only" 4 now;
        incr moved
      end)
    before;
  if !moved = 0 then Alcotest.fail "new member captured nothing";
  (* Removing it restores the exact old placement (determinism). *)
  Ring.remove ring 4;
  List.iter
    (fun (oid, old) -> check Alcotest.int "placement restored" old (Ring.owner ring oid))
    before;
  (* Same membership in a fresh ring places identically. *)
  let ring' = Ring.create () in
  List.iter (Ring.add ring') [ 3; 1; 0; 2 ];
  List.iter
    (fun (oid, old) -> check Alcotest.int "order-independent" old (Ring.owner ring' oid))
    before

(* --- Single-shard router == bare drive (oracle) ----------------------- *)

let resp_string = function
  | Rpc.R_data b -> Printf.sprintf "data:%s" (Digest.to_hex (Digest.bytes b))
  | r -> Format.asprintf "%a" Rpc.pp_resp r

let oracle_ops oids =
  let arr = Array.of_list oids in
  let oid i = arr.(i mod Array.length arr) in
  [
    Rpc.Write { oid = oid 0; off = 0; len = 700; data = Some (Bytes.make 700 'a') };
    Rpc.Write { oid = oid 1; off = 4000; len = 500; data = Some (Bytes.make 500 'b') };
    Rpc.Append { oid = oid 0; len = 300; data = Some (Bytes.make 300 'c') };
    Rpc.Sync;
    Rpc.Read { oid = oid 0; off = 0; len = 1000; at = None };
    Rpc.Truncate { oid = oid 1; size = 100 };
    Rpc.Set_attr { oid = oid 2; attr = Bytes.of_string "meta" };
    Rpc.Get_attr { oid = oid 2; at = None };
    Rpc.Write { oid = oid 2; off = 50; len = 200; data = Some (Bytes.make 200 'd') };
    Rpc.Sync;
    Rpc.Read { oid = oid 1; off = 0; len = 4096; at = None };
    Rpc.Delete { oid = oid 3 };
    Rpc.Read { oid = oid 3; off = 0; len = 10; at = None };
    Rpc.P_create { name = "vol"; oid = oid 0 };
    Rpc.P_mount { name = "vol"; at = None };
    Rpc.P_list { at = None };
    Rpc.Sync;
  ]

let test_single_shard_matches_bare_drive () =
  let bare = mk_drive (Simclock.create ()) in
  let _, router = mk_array 1 in
  (* Same creates produce the same oids on both sides. *)
  let boids = List.init 4 (fun _ -> expect_oid (Drive.handle bare alice (Rpc.Create { acl = [] }))) in
  let roids = List.init 4 (fun _ -> create router) in
  check (Alcotest.list Alcotest.int64) "oid allocation" boids roids;
  List.iter
    (fun req ->
      let rb = Drive.handle bare alice req in
      let rr = Router.handle router alice req in
      check Alcotest.string
        (Format.asprintf "response to %s" (Rpc.op_name req))
        (resp_string rb) (resp_string rr))
    (oracle_ops boids);
  (* The clocks advanced identically: phantom-delta charging is
     faithful to direct disk accounting. *)
  check Alcotest.int64 "clock parity"
    (Simclock.now (Drive.clock bare))
    (Simclock.now (Router.clock router));
  (* Version histories are identical, and every retained version reads
     back the same through both surfaces. *)
  List.iter
    (fun oid ->
      let vb = Store.versions (Drive.store bare) oid in
      let vr = Store.versions (holder_store router oid) oid in
      check
        (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int64))
        "version history"
        (List.map (fun (e : S4_store.Entry.t) -> (e.S4_store.Entry.seq, e.S4_store.Entry.time)) vb)
        (List.map (fun (e : S4_store.Entry.t) -> (e.S4_store.Entry.seq, e.S4_store.Entry.time)) vr);
      List.iter
        (fun (e : S4_store.Entry.t) ->
          let at = Some e.S4_store.Entry.time in
          let rb = Drive.handle bare alice (Rpc.Read { oid; off = 0; len = 1 lsl 16; at }) in
          let rr = Router.handle router alice (Rpc.Read { oid; off = 0; len = 1 lsl 16; at }) in
          check Alcotest.string "historical read" (resp_string rb) (resp_string rr))
        vb)
    boids

(* --- Fan-out semantics ------------------------------------------------ *)

let test_fanout_admin_and_audit () =
  let _, router = mk_array 3 in
  let oids = List.init 12 (fun _ -> create router) in
  List.iteri (fun i oid -> write router oid (Printf.sprintf "object %d" i)) oids;
  (* Objects really spread over the members. *)
  let holders = List.sort_uniq compare (List.map (Router.shard_of router) oids) in
  if List.length holders < 2 then Alcotest.fail "all objects landed on one shard";
  expect_unit (Router.handle router alice Rpc.Sync);
  expect_unit (Router.handle router Rpc.admin_cred (Rpc.Set_window { window = 1_000_000_000L }));
  expect_unit (Router.handle router Rpc.admin_cred (Rpc.Flush { until = 1L }));
  (* Audit fan-out merges every shard's records in time order and
     covers activity on every holding shard. *)
  match Router.handle router Rpc.admin_cred (Rpc.Read_audit { since = 0L; until = Int64.max_int }) with
  | Rpc.R_audit records ->
    if List.length records < List.length oids then
      Alcotest.failf "audit too small: %d records" (List.length records);
    let rec sorted = function
      | a :: (b :: _ as rest) ->
        if Int64.compare a.S4.Audit.at b.S4.Audit.at > 0 then false else sorted rest
      | _ -> true
    in
    if not (sorted records) then Alcotest.fail "audit records not time-ordered";
    let audited = List.map (fun r -> r.S4.Audit.oid) records in
    List.iter
      (fun oid ->
        if not (List.mem oid audited) then
          Alcotest.failf "object %Ld missing from merged audit" oid)
      oids
  | r -> Alcotest.failf "audit: %a" Rpc.pp_resp r

(* --- Degraded-shard reporting ----------------------------------------- *)

let oid_on router shard =
  let rec loop n =
    if n > 64 then Alcotest.failf "no object landed on shard %d" shard
    else
      let oid = create router in
      if Router.shard_of router oid = shard then oid else loop (n + 1)
  in
  loop 0

let test_degraded_shard_reporting () =
  let _, router = mk_array 2 in
  let victim = oid_on router 1 in
  let healthy = oid_on router 0 in
  check Alcotest.bool "initially healthy" false (Router.degraded router);
  let policy = Fault.create (Rng.create ~seed:7) in
  Sim_disk.set_fault (shard_disk router 1) (Some policy);
  Fault.fail_next policy ~writes:100 ~transient:false;
  (match
     Router.handle router alice ~sync:true
       (Rpc.Write { oid = victim; off = 0; len = 64; data = Some (Bytes.make 64 'x') })
   with
  | Rpc.R_error (Rpc.Io_error _) -> ()
  | r -> Alcotest.failf "expected Io_error, got %a" Rpc.pp_resp r);
  Sim_disk.set_fault (shard_disk router 1) None;
  check (Alcotest.list Alcotest.int) "degraded shard listed" [ 1 ] (Router.degraded_shards router);
  check Alcotest.bool "array degraded" true (Router.degraded router);
  if Router.io_errors router < 1 then Alcotest.fail "io_errors not counted";
  (* The healthy shard keeps serving. *)
  write router healthy "still fine";
  check Alcotest.string "healthy shard serves" "still fine" (read_str router healthy)

let test_mirrored_shard_fails_over () =
  let clock = Simclock.create () in
  let mirror = Mirror.create (mk_drive clock) (mk_drive clock) in
  let members = [ (0, Router.Mirrored mirror); (1, Router.Single (mk_drive clock)) ] in
  let router = Router.create members in
  let victim = oid_on router 0 in
  write router victim "replicated";
  (* Fail the primary replica's disk: the mirror absorbs the fault, so
     the array never reports the shard degraded. *)
  let pdisk = S4_seglog.Log.disk (Drive.log (Mirror.drive mirror Mirror.Primary)) in
  let policy = Fault.create (Rng.create ~seed:8) in
  Sim_disk.set_fault pdisk (Some policy);
  Fault.fail_next policy ~writes:100 ~transient:false;
  expect_unit
    (Router.handle router alice ~sync:true
       (Rpc.Write { oid = victim; off = 0; len = 10; data = Some (Bytes.of_string "new bytes!") }));
  Sim_disk.set_fault pdisk None;
  check (Alcotest.list Alcotest.int) "no degraded shards" [] (Router.degraded_shards router);
  check Alcotest.bool "mirror noticed the dead replica" true (Mirror.is_failed mirror Mirror.Primary);
  check Alcotest.string "data survived failover" "new bytes!" (read_str router victim)

(* --- Online rebalancing ----------------------------------------------- *)

(* Observable history of an oid through the router surface: for every
   retained version timestamp, the (size-extended) content digest. *)
let history router oid =
  let entries = Store.versions (holder_store router oid) oid in
  List.filter_map
    (fun (e : S4_store.Entry.t) ->
      let at = Some e.S4_store.Entry.time in
      match Router.handle router alice (Rpc.Read { oid; off = 0; len = 1 lsl 16; at }) with
      | Rpc.R_data b ->
        Some (e.S4_store.Entry.time, Printf.sprintf "%d:%s" (Bytes.length b) (Digest.to_hex (Digest.bytes b)))
      | Rpc.R_error Rpc.Object_deleted | Rpc.R_error Rpc.Not_found ->
        Some (e.S4_store.Entry.time, "absent")
      | r -> Alcotest.failf "history read %Ld: %a" oid Rpc.pp_resp r)
    entries

let test_rebalance_preserves_every_version () =
  let clock, router = mk_array 2 in
  let oids = List.init 24 (fun _ -> create router) in
  (* Several distinct versions per object, spaced in time. *)
  for v = 1 to 3 do
    List.iteri
      (fun i oid ->
        write router oid (Printf.sprintf "object %d version %d" i v);
        Simclock.advance clock 1_000_000L)
      oids
  done;
  expect_unit (Router.handle router alice Rpc.Sync);
  let before = List.map (fun oid -> (oid, history router oid)) oids in
  (* Membership change: a third drive joins the live array. *)
  let queued = Router.add_shard router 2 (Router.Single (mk_drive clock)) in
  if queued = 0 then Alcotest.fail "new member captured no objects";
  check Alcotest.int "migrations queued" queued (Router.pending_migrations router);
  (* Mid-migration: forwarding keeps every object readable from its old
     home, historical versions included. *)
  List.iter
    (fun (oid, h) -> check (Alcotest.list (Alcotest.pair Alcotest.int64 Alcotest.string))
        "forwarded history" h (history router oid))
    before;
  let moved, errors = Router.rebalance router in
  check (Alcotest.list Alcotest.string) "no migration errors" [] errors;
  check Alcotest.int "every queued move completed" queued moved;
  check Alcotest.int "queue drained" 0 (Router.pending_migrations router);
  (* Post-cutover: placement is clean and every version of every object
     still answers identically at every timestamp. *)
  check (Alcotest.list Alcotest.string) "fsck clean" [] (Router.fsck router);
  let relocated = ref 0 in
  List.iter
    (fun (oid, h) ->
      if Router.shard_of router oid = 2 then incr relocated;
      check
        (Alcotest.list (Alcotest.pair Alcotest.int64 Alcotest.string))
        (Printf.sprintf "history of %Ld" oid)
        h (history router oid))
    before;
  if !relocated = 0 then Alcotest.fail "no test object actually moved";
  let stats = Router.migration_stats router in
  if stats.Router.objects < queued then Alcotest.fail "migration stats undercount";
  (* The array still takes writes, including to relocated objects. *)
  List.iter (fun oid -> write router oid "after rebalance") oids;
  List.iter
    (fun oid ->
      match Router.handle router alice (Rpc.Read { oid; off = 0; len = 15; at = None }) with
      | Rpc.R_data b ->
        check Alcotest.string "post-rebalance write" "after rebalance" (Bytes.to_string b)
      | r -> Alcotest.failf "post-rebalance read: %a" Rpc.pp_resp r)
    oids

let test_rebalance_preserves_deleted_versions () =
  let clock, router = mk_array 2 in
  let oid = oid_on router 0 in
  write router oid "short-lived";
  Simclock.advance clock 1_000_000L;
  expect_unit (Router.handle router alice (Rpc.Delete { oid }));
  expect_unit (Router.handle router alice Rpc.Sync);
  let h = history router oid in
  (* Keep adding members (rebalancing each time) until the deleted
     object gets reassigned off its original home. Placement is
     deterministic, so this terminates identically on every run. *)
  let rec relocate id =
    if id > 8 then Alcotest.fail "object never reassigned"
    else begin
      ignore (Router.add_shard router id (Router.Single (mk_drive clock)));
      let _, errors = Router.rebalance router in
      check (Alcotest.list Alcotest.string) "no errors" [] errors;
      if Router.shard_of router oid = 0 then relocate (id + 1)
    end
  in
  relocate 2;
  check
    (Alcotest.list (Alcotest.pair Alcotest.int64 Alcotest.string))
    "deleted object's history survives the move" h (history router oid);
  (* Still deleted now. *)
  match Router.handle router alice (Rpc.Read { oid; off = 0; len = 8; at = None }) with
  | Rpc.R_error Rpc.Object_deleted | Rpc.R_error Rpc.Not_found -> ()
  | r -> Alcotest.failf "expected deleted, got %a" Rpc.pp_resp r

let test_overlapping_membership_changes () =
  let clock, router = mk_array 2 in
  let oids = List.init 24 (fun _ -> create router) in
  List.iteri (fun i oid -> write router oid (Printf.sprintf "payload %d" i)) oids;
  expect_unit (Router.handle router alice Rpc.Sync);
  (* First membership change; drain only part of its queue... *)
  let q1 = Router.add_shard router 2 (Router.Single (mk_drive clock)) in
  if q1 = 0 then Alcotest.fail "first add captured no objects";
  (match Router.rebalance_step router with
   | Ok (Some _) -> ()
   | Ok None -> Alcotest.fail "queue unexpectedly empty"
   | Error e -> Alcotest.fail e);
  (* ...then add another member while moves are still queued. Their
     planned destinations are stale against the new ring: executing
     one as queued used to strand the object on a shard the ring no
     longer points at (every later read -> No_such_object). *)
  ignore (Router.add_shard router 3 (Router.Single (mk_drive clock)));
  let _, errors = Router.rebalance router in
  check (Alcotest.list Alcotest.string) "no migration errors" [] errors;
  check Alcotest.int "queue drained" 0 (Router.pending_migrations router);
  check (Alcotest.list Alcotest.string) "fsck clean" [] (Router.fsck router);
  List.iteri
    (fun i oid ->
      check Alcotest.string "object survives overlapping rebalances"
        (Printf.sprintf "payload %d" i) (read_str router oid))
    oids

let test_lagging_mirror_defers_migration () =
  let clock = Simclock.create () in
  let mirror = Mirror.create (mk_drive clock) (mk_drive clock) in
  let router = Router.create [ (0, Router.Mirrored mirror); (1, Router.Single (mk_drive clock)) ] in
  let oids = List.init 16 (fun _ -> create router) in
  List.iter (fun oid -> write router oid "v1") oids;
  expect_unit (Router.handle router alice Rpc.Sync);
  (* Fail the mirror's PRIMARY: the secondary becomes the authoritative
     replica; the primary's store is stale and owes every mutation
     below to the missed-op journal. *)
  Mirror.set_failed mirror Mirror.Primary true;
  List.iter (fun oid -> write router oid "v2") oids;
  (* A Create landing on the mirrored shard is journalled with its
     resolved oid (replayed onto the same id at resync). *)
  let fresh = oid_on router 0 in
  write router fresh "v2";
  check Alcotest.bool "mutations journalled" true (Mirror.lag mirror > 0);
  (* Membership change while the mirror lags: moves touching shard 0
     are deferred, not exported off the stale primary store. *)
  ignore (Router.add_shard router 2 (Router.Single (mk_drive clock)));
  let _, errors = Router.rebalance router in
  check Alcotest.bool "lagging-mirror moves deferred" true (errors <> []);
  check Alcotest.bool "moves still pending" true (Router.pending_migrations router > 0);
  (* Nothing was lost to a stale export. *)
  List.iter (fun oid -> check Alcotest.string "data intact" "v2" (read_str router oid)) oids;
  check Alcotest.string "degraded-mode create intact" "v2" (read_str router fresh);
  (* Repair and drain the journal (replaying the Create onto its
     original oid through the array's allocator guard), then the
     deferred moves proceed. *)
  Mirror.set_failed mirror Mirror.Primary false;
  (match Mirror.resync mirror with
   | Ok n -> check Alcotest.bool "replayed" true (n > 0)
   | Error e -> Alcotest.fail e);
  check (Alcotest.list Alcotest.string) "replicas re-converged" [] (Mirror.divergence mirror);
  let _, errors = Router.rebalance router in
  check (Alcotest.list Alcotest.string) "post-resync migration errors" [] errors;
  check Alcotest.int "queue drained" 0 (Router.pending_migrations router);
  check (Alcotest.list Alcotest.string) "fsck clean" [] (Router.fsck router);
  List.iter (fun oid -> check Alcotest.string "data after rebalance" "v2" (read_str router oid)) oids;
  check Alcotest.string "fresh object after rebalance" "v2" (read_str router fresh)

(* --- ring properties ----------------------------------------------- *)

let qtest = Qseed.qtest

(* Distinct member ids, 2..8 of them. *)
let arb_members =
  QCheck.(
    map
      (fun ids ->
        let ids = List.sort_uniq compare (List.map (fun i -> i mod 64) ids) in
        match ids with [] -> [ 0; 1 ] | [ x ] -> [ x; (x + 1) mod 64 ] | _ -> ids)
      (list_of_size Gen.(2 -- 8) small_nat))

let prop_ring_balance =
  QCheck.Test.make ~name:"ring balances keys across members" ~count:50 arb_members
    (fun members ->
      let ring = Ring.create ~vnodes:128 () in
      List.iter (Ring.add ring) members;
      let n = List.length members in
      let keys = 2000 in
      let counts = Hashtbl.create 8 in
      for i = 0 to keys - 1 do
        let o = Ring.owner ring (Int64.of_int (i * 7919)) in
        Hashtbl.replace counts o (1 + Option.value ~default:0 (Hashtbl.find_opt counts o))
      done;
      let fair = float_of_int keys /. float_of_int n in
      List.for_all
        (fun m ->
          let c = float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts m)) in
          (* 128 vnodes give rough balance, not perfection: every member
             must own something and none may own triple its fair share. *)
          c > fair *. 0.15 && c < fair *. 3.0)
        members)

let prop_ring_remove_only_remaps_removed =
  QCheck.Test.make ~name:"removing a member only remaps its own keys" ~count:50
    QCheck.(pair arb_members small_nat)
    (fun (members, pick) ->
      let victim = List.nth members (pick mod List.length members) in
      let ring = Ring.create ~vnodes:128 () in
      List.iter (Ring.add ring) members;
      let keys = List.init 1000 (fun i -> Int64.of_int ((i * 104729) + 3)) in
      let before = List.map (fun k -> (k, Ring.owner ring k)) keys in
      Ring.remove ring victim;
      List.for_all
        (fun (k, old) -> old = victim || Ring.owner ring k = old)
        before)

(* --- integrity-catalog aging ----------------------------------------- *)

module Catalog = S4_integrity.Catalog

let read_raw_catalog d =
  match Drive.named_oid d ".s4/integrity" with
  | None -> Alcotest.fail "meta drive has no catalog object"
  | Some oid ->
    let st = Drive.store d in
    (match Catalog.decode (Store.read st oid ~off:0 ~len:(Store.size st oid)) with
     | Some entries -> entries
     | None -> Alcotest.fail "catalog undecodable")

let test_catalog_ages_departed_floor () =
  (* A member that leaves the array keeps its catalog floor — still
     evidence against a rewritten chain — until the floor ages out of
     the detection window; live members' floors never age out. *)
  let clock = Simclock.create () in
  let d0 = mk_drive clock and d1 = mk_drive clock and d2 = mk_drive clock in
  let r =
    Router.create [ (0, Router.Single d0); (1, Router.Single d1); (2, Router.Single d2) ]
  in
  let oid = create r in
  write r oid "catalogued";
  Router.sync_all r;
  check Alcotest.bool "departed member pinned while present" true
    (Catalog.find (read_raw_catalog d0) ~shard:2 ~replica:0 <> None);
  (* Reattach without shard 2 (its disk was lost/pulled). *)
  let r = Router.attach [ (0, Router.Single d0); (1, Router.Single d1) ] in
  Router.sync_all r;
  check Alcotest.bool "departed floor retained inside the window" true
    (Catalog.find (read_raw_catalog d0) ~shard:2 ~replica:0 <> None);
  (* Age past every member's detection window: the floor is pruned on
     the next admin barrier, the live members' entries are not. *)
  let day = 86_400_000_000_000L in
  Simclock.advance clock (Int64.mul 8L day);
  Router.sync_all r;
  let entries = read_raw_catalog d0 in
  check Alcotest.bool "departed floor pruned after the window" true
    (Catalog.find entries ~shard:2 ~replica:0 = None);
  check Alcotest.bool "live floors survive" true
    (Catalog.find entries ~shard:0 ~replica:0 <> None
    && Catalog.find entries ~shard:1 ~replica:0 <> None)

(* --- trace checker over a mid-rebalance crash ----------------------- *)

module Trace = S4_obs.Trace
module Crashtest = S4_tools.Crashtest

let test_trace_checker_mid_rebalance () =
  Trace.clear ();
  Trace.enable ();
  Fun.protect ~finally:Trace.disable (fun () ->
      let r = Crashtest.rebalance_run ~seed:19 ~crash_after:1 () in
      check Alcotest.bool "scenario crashed" true r.Crashtest.crashed;
      check Alcotest.bool "spans recorded" true (Trace.count () > 0);
      check (Alcotest.list Alcotest.string) "no violations (incl. trace checker)" []
        r.Crashtest.violations);
  Trace.clear ()

let () =
  Alcotest.run "s4_shard"
    [
      ("ring", [ Alcotest.test_case "placement stability" `Quick test_ring_placement_stability;
                 qtest prop_ring_balance;
                 qtest prop_ring_remove_only_remaps_removed ]);
      ( "trace",
        [ Alcotest.test_case "checker over mid-rebalance crash" `Quick
            test_trace_checker_mid_rebalance ] );
      ( "router",
        [
          Alcotest.test_case "single shard == bare drive" `Quick test_single_shard_matches_bare_drive;
          Alcotest.test_case "fan-out admin + audit merge" `Quick test_fanout_admin_and_audit;
          Alcotest.test_case "catalog ages departed floors" `Quick
            test_catalog_ages_departed_floor;
        ] );
      ( "degraded",
        [
          Alcotest.test_case "io-error shard reported" `Quick test_degraded_shard_reporting;
          Alcotest.test_case "mirrored shard fails over" `Quick test_mirrored_shard_fails_over;
        ] );
      ( "rebalance",
        [
          Alcotest.test_case "all versions survive" `Quick test_rebalance_preserves_every_version;
          Alcotest.test_case "deleted objects survive" `Quick test_rebalance_preserves_deleted_versions;
          Alcotest.test_case "overlapping membership changes" `Quick
            test_overlapping_membership_changes;
          Alcotest.test_case "lagging mirror defers migration" `Quick
            test_lagging_mirror_defers_migration;
        ] );
    ]
