lib/tools/history.mli: Bytes Nfs_fh S4 S4_nfs S4_store
