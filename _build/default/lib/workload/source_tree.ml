module Rng = S4_util.Rng

type file = { path : string; content : Bytes.t }
type t = file list

let words =
  [|
    "buffer"; "segment"; "journal"; "version"; "object"; "handle"; "offset"; "length";
    "client"; "server"; "request"; "response"; "window"; "history"; "audit"; "block";
    "table"; "entry"; "index"; "cache"; "state"; "write"; "read"; "sync"; "flush";
  |]

let gen_line rng i =
  match Rng.int rng 5 with
  | 0 ->
    Printf.sprintf "let %s_%d %s %s = %s %s + %d\n" (Rng.pick rng words) i (Rng.pick rng words)
      (Rng.pick rng words) (Rng.pick rng words) (Rng.pick rng words) (Rng.int rng 1000)
  | 1 -> Printf.sprintf "  (* %s the %s before the %s is %s *)\n" (Rng.pick rng words)
           (Rng.pick rng words) (Rng.pick rng words) (Rng.pick rng words)
  | 2 -> Printf.sprintf "  match %s with Some %s -> %s | None -> %d\n" (Rng.pick rng words)
           (Rng.pick rng words) (Rng.pick rng words) (Rng.int rng 100)
  | 3 -> Printf.sprintf "type %s_%d = { %s : int; %s : string }\n" (Rng.pick rng words) i
           (Rng.pick rng words) (Rng.pick rng words)
  | _ -> Printf.sprintf "  if %s > %d then %s else %s\n" (Rng.pick rng words) (Rng.int rng 64)
           (Rng.pick rng words) (Rng.pick rng words)

let gen_source rng ~lines =
  let buf = Buffer.create (lines * 40) in
  for i = 0 to lines - 1 do
    Buffer.add_string buf (gen_line rng i)
  done;
  Buffer.to_bytes buf

(* A crude "compiler": derived binaries are a deterministic function
   of the source so they change exactly when the source changes. *)
let compile src =
  let n = Bytes.length src in
  let out = Bytes.create (n / 2) in
  for i = 0 to (n / 2) - 1 do
    let a = Char.code (Bytes.get src (2 * i)) in
    let b = Char.code (Bytes.get src ((2 * i) + 1)) in
    Bytes.set out i (Char.chr (((a * 31) + b) land 0xFF))
  done;
  out

let generate rng ~files =
  let sources =
    List.init files (fun i ->
        let lines = 50 + Rng.int rng 400 in
        { path = Printf.sprintf "src/mod%03d.ml" i; content = gen_source rng ~lines })
  in
  let objects =
    List.map
      (fun f ->
        { path = Filename.remove_extension f.path ^ ".o" |> String.map (fun c -> c);
          content = compile f.content })
      sources
  in
  sources @ objects

let lines_of b = String.split_on_char '\n' (Bytes.to_string b)
let bytes_of_lines ls = Bytes.of_string (String.concat "\n" ls)

let edit_file rng content =
  let lines = Array.of_list (lines_of content) in
  let n = Array.length lines in
  if n < 3 then content
  else begin
    let edits = 1 + Rng.int rng 5 in
    let out = ref (Array.to_list lines) in
    for _ = 1 to edits do
      let lines = Array.of_list !out in
      let n = Array.length lines in
      let pos = Rng.int rng n in
      let fresh = String.trim (Bytes.to_string (gen_source rng ~lines:1)) in
      out :=
        (match Rng.int rng 3 with
         | 0 ->
           (* replace a line *)
           Array.to_list (Array.mapi (fun i l -> if i = pos then fresh else l) lines)
         | 1 ->
           (* insert a line *)
           let before = Array.to_list (Array.sub lines 0 pos) in
           let after = Array.to_list (Array.sub lines pos (n - pos)) in
           before @ (fresh :: after)
         | _ ->
           (* delete a line *)
           List.filteri (fun i _ -> i <> pos) (Array.to_list lines))
    done;
    bytes_of_lines !out
  end

let is_source path = Filename.check_suffix path ".ml"
let object_of path = Filename.remove_extension path ^ ".o"

let evolve rng ?(churn = 0.12) t =
  let sources = List.filter (fun f -> is_source f.path) t in
  let edited =
    List.map
      (fun f ->
        if Rng.float rng 1.0 < churn then { f with content = edit_file rng f.content } else f)
      sources
  in
  (* Occasionally add a brand new module. *)
  let edited =
    if Rng.float rng 1.0 < 0.5 then
      edited
      @ [ { path = Printf.sprintf "src/new%04d.ml" (Rng.int rng 10_000);
            content = gen_source rng ~lines:(30 + Rng.int rng 200) } ]
    else edited
  in
  (* Occasionally drop a module. *)
  let edited =
    match edited with
    | _ :: rest when Rng.float rng 1.0 < 0.15 -> rest
    | all -> all
  in
  let objects = List.map (fun f -> { path = object_of f.path; content = compile f.content }) edited in
  edited @ objects

let total_bytes t = List.fold_left (fun acc f -> acc + Bytes.length f.content) 0 t
let find t path = Option.map (fun f -> f.content) (List.find_opt (fun f -> f.path = path) t)
