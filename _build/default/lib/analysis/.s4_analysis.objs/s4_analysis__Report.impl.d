lib/analysis/report.ml: Array Float List Printf String
