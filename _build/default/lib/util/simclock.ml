type ns = int64
type t = { mutable now : ns }

let create () = { now = 0L }
let now t = t.now

let advance t d =
  if Int64.compare d 0L < 0 then invalid_arg "Simclock.advance: negative";
  t.now <- Int64.add t.now d

let of_seconds s = Int64.of_float (s *. 1e9)
let to_seconds ns = Int64.to_float ns /. 1e9
let of_ms ms = Int64.of_float (ms *. 1e6)
let of_us us = Int64.of_float (us *. 1e3)
let advance_s t s = advance t (of_seconds s)

let set t abs =
  if Int64.compare abs t.now < 0 then invalid_arg "Simclock.set: backward";
  t.now <- abs

let seconds t = to_seconds t.now

let pp_duration ppf ns =
  let f = Int64.to_float ns in
  if f >= 1e9 then Format.fprintf ppf "%.2f s" (f /. 1e9)
  else if f >= 1e6 then Format.fprintf ppf "%.2f ms" (f /. 1e6)
  else if f >= 1e3 then Format.fprintf ppf "%.2f us" (f /. 1e3)
  else Format.fprintf ppf "%Ld ns" ns
