(** Byte-stream transports for the wire protocol.

    Two implementations of one connection-oriented interface: real TCP
    sockets, and a deterministic in-memory loopback that drives a
    {!Server.Session} synchronously — every send runs the server
    engine to completion, so loopback tests are single-threaded and
    reproducible while exercising the same protocol code as TCP. *)

exception Closed
(** The connection is gone (EOF, reset, or closed locally). *)

exception Timeout
(** No data arrived within the configured receive timeout. *)

type endpoint = {
  ep_peer : string;  (** for messages: "127.0.0.1:7777", "loopback" *)
  ep_send : Bytes.t -> unit;
  ep_recv : Bytes.t -> int -> int -> int;
      (** [ep_recv buf off len] reads at most [len] bytes; 0 = EOF *)
  ep_set_timeout : float option -> unit;  (** receive timeout, seconds *)
  ep_close : unit -> unit;
}

type t = { label : string; connect : unit -> endpoint }
(** A way to reach a server; [connect] yields a fresh connection and
    may raise ({!Closed} or [Unix.Unix_error]) when the server is
    unreachable. *)

val tcp : host:string -> port:int -> t

val loopback : ?identity:int -> Server.t -> t
(** Each [connect] opens a fresh {!Server.Session} with the given
    connection identity (default 1). Sends are processed immediately;
    receives return whatever the session owes, raise {!Timeout} when
    it owes nothing, and return EOF once the session has finished.
    Sessions are created with tracing enabled — loopback runs on the
    caller's thread, where the span tracer is safe. *)
