test/test_seglog.mli:
