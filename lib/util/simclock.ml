type ns = int64
type t = { mutable now : ns }

(* Domain-local time lanes.

   A worker domain that has been handed exclusive ownership of a slice
   of the array (one shard per worker, see Shard_domain) charges its
   CPU, penalty and disk time to a private lane instead of the shared
   clock, so that concurrent shards do not serialize on [now]. The
   parent forks a lane at the shared [now], the worker runs with the
   lane active, and the parent joins the lanes back by advancing the
   shared clock by the *maximum* elapsed lane time — the slowest
   member defines batch latency, exactly like the phantom-disk charge
   rule. Lane routing is keyed on the clock instance, so a domain with
   a lane for clock A still sees clock B directly. Serial code never
   forks a lane and is bit-for-bit unaffected. *)
type lane = { owner : t; start : ns; mutable local : ns }

let lane_slot : lane option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let lane_for t =
  let r = Domain.DLS.get lane_slot in
  match !r with Some l when l.owner == t -> Some l | _ -> None

let fork_lane t ~at =
  let r = Domain.DLS.get lane_slot in
  (match !r with
  | Some _ -> invalid_arg "Simclock.fork_lane: lane already active"
  | None -> ());
  r := Some { owner = t; start = at; local = at }

let join_lane t =
  let r = Domain.DLS.get lane_slot in
  match !r with
  | Some l when l.owner == t ->
      r := None;
      Int64.sub l.local l.start
  | _ -> invalid_arg "Simclock.join_lane: no lane for this clock"

let in_lane t = lane_for t <> None

let create () = { now = 0L }

let now t =
  match lane_for t with Some l -> l.local | None -> t.now

let advance t d =
  if Int64.compare d 0L < 0 then invalid_arg "Simclock.advance: negative";
  match lane_for t with
  | Some l -> l.local <- Int64.add l.local d
  | None -> t.now <- Int64.add t.now d

let of_seconds s = Int64.of_float (s *. 1e9)
let to_seconds ns = Int64.to_float ns /. 1e9
let of_ms ms = Int64.of_float (ms *. 1e6)
let of_us us = Int64.of_float (us *. 1e3)
let advance_s t s = advance t (of_seconds s)

let set t abs =
  match lane_for t with
  | Some l ->
      if Int64.compare abs l.local < 0 then
        invalid_arg "Simclock.set: backward";
      l.local <- abs
  | None ->
      if Int64.compare abs t.now < 0 then invalid_arg "Simclock.set: backward";
      t.now <- abs

let seconds t = to_seconds (now t)

let pp_duration ppf ns =
  let f = Int64.to_float ns in
  if f >= 1e9 then Format.fprintf ppf "%.2f s" (f /. 1e9)
  else if f >= 1e6 then Format.fprintf ppf "%.2f ms" (f /. 1e6)
  else if f >= 1e3 then Format.fprintf ppf "%.2f us" (f /. 1e3)
  else Format.fprintf ppf "%Ld ns" ns
