type audit_view = { a_at : int64; a_op : string; a_oid : int64; a_ok : bool }

type result = {
  violations : string list;
  spans_checked : int;
  audit_matched : int;
}

let is_set v = Int64.compare v Trace.unset <> 0

(* Drive-level ops that change object state; "create" is included even
   though its span carries the allocated oid rather than the request's
   (the request names none). *)
let mutation_kinds =
  [ "create"; "delete"; "write"; "append"; "truncate"; "setattr"; "setacl"; "pcreate"; "pdelete" ]

let is_mutation s = s.Trace.layer = Trace.Drive && List.mem s.Trace.kind mutation_kinds

(* A successful span of one of these kinds proves the object existed
   no later than the span's completion. *)
let existence_kinds = [ "create"; "write"; "append"; "truncate"; "setattr"; "setacl" ]

let dur s = Int64.sub s.Trace.stop_ns s.Trace.start_ns

let run ?(audit : audit_view list option) ?chain ?(complete = false) ?(versions = []) sp =
  let violations = ref [] in
  let nviol = ref 0 in
  let add fmt =
    Printf.ksprintf
      (fun m ->
        incr nviol;
        if !nviol <= 100 then violations := m :: !violations
        else if !nviol = 101 then violations := "... further violations suppressed" :: !violations)
      fmt
  in
  let n = Array.length sp in

  (* --- structural: closed, well-ordered, nested ------------------- *)
  Array.iter
    (fun s ->
      let open Trace in
      if not (is_set s.stop_ns) then add "span #%d %s/%s never closed" s.id (layer_name s.layer) s.kind
      else if Int64.compare s.stop_ns s.start_ns < 0 then
        add "span #%d %s/%s stops before it starts" s.id (layer_name s.layer) s.kind;
      if s.parent >= 0 then begin
        if s.parent >= n || s.parent >= s.id then
          add "span #%d has invalid parent %d" s.id s.parent
        else begin
          let p = sp.(s.parent) in
          if Int64.compare s.start_ns p.start_ns < 0 then
            add "span #%d starts before its parent #%d" s.id p.id;
          if is_set s.stop_ns && is_set p.stop_ns && Int64.compare s.stop_ns p.stop_ns > 0 then
            add "span #%d (%s/%s) outlives its parent #%d (%s/%s)" s.id (layer_name s.layer)
              s.kind p.id (layer_name p.layer) p.kind
        end
      end)
    sp;

  (* --- audit correspondence --------------------------------------- *)
  let drive_spans =
    Array.to_list sp |> List.filter (fun s -> s.Trace.layer = Trace.Drive)
  in
  let matched = ref 0 in
  (match audit with
   | None -> ()
   | Some records ->
     let matches (r : audit_view) (s : Trace.span) =
       r.a_op = s.Trace.kind && r.a_ok = s.Trace.ok
       && (Int64.equal r.a_oid 0L || Int64.equal r.a_oid s.Trace.oid)
       && Int64.compare r.a_at s.Trace.start_ns >= 0
       && (not (is_set s.Trace.stop_ns) || Int64.compare r.a_at s.Trace.stop_ns <= 0)
     in
     if complete then begin
       (* Loss-free trail: records and drive spans pair up positionally. *)
       let rec zip i rs ss =
         match (rs, ss) with
         | [], [] -> ()
         | [], s :: _ ->
           add "drive span #%d (%s) and %d more have no audit record" s.Trace.id s.Trace.kind
             (List.length ss - 1)
         | r :: _, [] ->
           add "audit record %d (%s oid %Ld) and %d more beyond the traced spans" i r.a_op
             r.a_oid (List.length rs - 1)
         | r :: rs', s :: ss' ->
           if matches r s then begin
             incr matched;
             zip (i + 1) rs' ss'
           end
           else
             add "audit record %d (%s/%Ld/%b@%Ld) does not match drive span #%d (%s/%Ld/%b)" i
               r.a_op r.a_oid r.a_ok r.a_at s.Trace.id s.Trace.kind s.Trace.oid s.Trace.ok
       in
       zip 0 records drive_spans
     end
     else begin
       (* Crash-truncated trail: records must match drive spans in
          order, but spans may go unmatched (lost buffered records,
          spans aborted by the crash itself). *)
       let rec go i rs ss =
         match (rs, ss) with
         | [], _ -> ()
         | r :: _, [] -> add "audit record %d (%s oid %Ld) matches no drive span" i r.a_op r.a_oid
         | r :: rs', s :: ss' ->
           if matches r s then begin
             incr matched;
             go (i + 1) rs' ss'
           end
           else go i rs ss'
       in
       go 0 records drive_spans
     end);

  (* --- audit chain integrity --------------------------------------- *)
  (* The tamper-evidence verdict folds into the same violation stream:
     a trace whose audit trail fails chain verification is as broken as
     one whose spans disagree with it. The caller ran the (uncharged)
     walk; we only re-report its findings. *)
  (match (chain : S4_integrity.Chain.verify_result option) with
   | None -> ()
   | Some r -> List.iter (fun e -> add "%s" e) r.S4_integrity.Chain.v_errors);

  (* --- per-object mutation monotonicity --------------------------- *)
  let last_start : (int64, int64) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let open Trace in
      if is_mutation s && s.ok && Int64.compare s.oid 0L > 0 then begin
        (match Hashtbl.find_opt last_start s.oid with
         | Some prev when Int64.compare s.start_ns prev < 0 ->
           add "oid %Ld: mutation span #%d starts at %Ld, before an earlier mutation at %Ld"
             s.oid s.id s.start_ns prev
         | _ -> ());
        Hashtbl.replace last_start s.oid s.start_ns
      end)
    drive_spans;

  (* --- store version chains --------------------------------------- *)
  List.iter
    (fun (oid, chain) ->
      ignore
        (List.fold_left
           (fun prev (seq, time) ->
             (match prev with
              | Some (pseq, ptime) ->
                if seq <= pseq then
                  add "oid %Ld: version seq %d not above predecessor %d" oid seq pseq;
                if Int64.compare time ptime < 0 then
                  add "oid %Ld: version %d timestamp %Ld precedes %Ld" oid seq time ptime
              | None -> ());
             Some (seq, time))
           None chain))
    versions;

  (* --- detection-window read guarantee ---------------------------- *)
  List.iter
    (fun s ->
      let open Trace in
      if
        (s.kind = "read" || s.kind = "getattr")
        && is_set s.at_ns
        && is_set s.cutoff_ns
        && Int64.compare s.at_ns s.cutoff_ns >= 0
        && (not s.ok) && s.err = "not_found"
      then begin
        let existed =
          List.exists
            (fun m ->
              m.Trace.id < s.id && m.Trace.ok
              && List.mem m.Trace.kind existence_kinds
              && Int64.equal m.Trace.oid s.oid
              && is_set m.Trace.stop_ns
              && Int64.compare m.Trace.stop_ns s.at_ns <= 0)
            drive_spans
        in
        let deleted =
          List.exists
            (fun m ->
              m.Trace.id < s.id && m.Trace.ok && m.Trace.kind = "delete"
              && Int64.equal m.Trace.oid s.oid
              && Int64.compare m.Trace.start_ns s.at_ns <= 0)
            drive_spans
        in
        if existed && not deleted then
          add
            "span #%d: in-window read of oid %Ld at %Ld (cutoff %Ld) failed although the trace \
             proves the version existed"
            s.id s.oid s.at_ns s.cutoff_ns
      end)
    drive_spans;

  (* --- fan-out charged at the slowest member ----------------------- *)
  Array.iter
    (fun s ->
      let open Trace in
      if s.layer = Router && is_set s.charged_ns && is_set s.stop_ns then begin
        if Int64.compare s.charged_ns (dur s) > 0 then
          add "router span #%d charged %Ldns but only spans %Ldns" s.id s.charged_ns (dur s);
        Array.iter
          (fun c ->
            if c.parent = s.id && c.layer = Drive && is_set c.disk_ns
               && Int64.compare c.disk_ns s.charged_ns > 0
            then
              add
                "router span #%d charged %Ldns, less than member drive span #%d's device time \
                 %Ldns"
                s.id s.charged_ns c.id c.disk_ns)
          sp
      end)
    sp;

  { violations = List.rev !violations; spans_checked = n; audit_matched = !matched }
