(* Crash-consistency and fault-injection tests: the Fault policy
   layer, drive-level retry/degraded mode, log recovery under crashes
   at every write boundary, the crash-recovery harness, and the mirror
   resync partial-failure paths. *)

module Simclock = S4_util.Simclock
module Rng = S4_util.Rng
module Geometry = S4_disk.Geometry
module Sim_disk = S4_disk.Sim_disk
module Fault = S4_disk.Fault
module Tag = S4_seglog.Tag
module Jblock = S4_seglog.Jblock
module Log = S4_seglog.Log
module Drive = S4.Drive
module Rpc = S4.Rpc
module Throttle = S4.Throttle
module Crashtest = S4_tools.Crashtest

let check = Alcotest.check
let small_geom = Geometry.with_capacity Geometry.cheetah_9gb ~bytes:(16 * 1024 * 1024)

let mk_disk () =
  let clock = Simclock.create () in
  Sim_disk.create ~geometry:small_geom clock

let admin = Rpc.admin_cred

let jb ~time =
  Jblock.encode ~block_size:4096 ~prev:(-1)
    [ { Jblock.oid = 1L; seq = 1; time = Int64.of_int time; kind = 0; payload = Bytes.empty } ]

let jtimes log =
  Log.journal_blocks log
  |> List.concat_map (fun (_, _, entries) ->
         List.map (fun e -> Int64.to_int e.Jblock.time) entries)

(* --- Fault policy + drive-level handling ----------------------------- *)

let expect_oid = function
  | Rpc.R_oid oid -> oid
  | r -> Alcotest.failf "expected oid, got %a" Rpc.pp_resp r

let expect_unit = function
  | Rpc.R_unit -> ()
  | r -> Alcotest.failf "expected unit, got %a" Rpc.pp_resp r

let mk_drive () =
  let disk = mk_disk () in
  (disk, Drive.format disk)

let write_req oid s =
  Rpc.Write { oid; off = 0; len = String.length s; data = Some (Bytes.of_string s) }

let test_scheduled_crash () =
  let disk = mk_disk () in
  let pol = Fault.create (Rng.create ~seed:3) in
  Sim_disk.set_fault disk (Some pol);
  Fault.schedule_crash pol ~after_writes:3;
  let data = Bytes.make 512 'x' in
  Sim_disk.write disk ~data ~lba:0 ~sectors:1 ();
  Sim_disk.write disk ~data ~lba:1 ~sectors:1 ();
  (try
     Sim_disk.write disk ~data ~lba:2 ~sectors:1 ();
     Alcotest.fail "third write should crash"
   with Fault.Crashed -> ());
  check Alcotest.bool "crashed" true (Fault.crashed pol);
  (* the device stays dead until the policy is detached *)
  (try
     Sim_disk.read disk ~lba:0 ~sectors:1;
     Alcotest.fail "post-crash read should raise"
   with Fault.Crashed -> ());
  Sim_disk.set_fault disk None;
  Sim_disk.read disk ~lba:0 ~sectors:1

let test_drive_retries_transient () =
  let disk, d = mk_drive () in
  let pol = Fault.create (Rng.create ~seed:1) in
  Sim_disk.set_fault disk (Some pol);
  let oid = expect_oid (Drive.handle d admin (Rpc.Create { acl = [] })) in
  expect_unit (Drive.handle d admin (write_req oid "survives transient faults"));
  Fault.fail_next pol ~writes:2 ~transient:true;
  expect_unit (Drive.handle d admin Rpc.Sync);
  check Alcotest.bool "retried" true ((Log.stats (Drive.log d)).Log.io_retries >= 2);
  check Alcotest.int "no io errors" 0 (Drive.io_errors d);
  check Alcotest.bool "not degraded" false (Drive.degraded d)

let test_drive_surfaces_permanent () =
  let disk, d = mk_drive () in
  let pol = Fault.create (Rng.create ~seed:2) in
  Sim_disk.set_fault disk (Some pol);
  let oid = expect_oid (Drive.handle d admin (Rpc.Create { acl = [] })) in
  expect_unit (Drive.handle d admin (write_req oid "at risk"));
  Fault.fail_next pol ~writes:1 ~transient:false;
  (match Drive.handle d admin Rpc.Sync with
   | Rpc.R_error (Rpc.Io_error _) -> ()
   | r -> Alcotest.failf "expected Io_error, got %a" Rpc.pp_resp r);
  check Alcotest.bool "degraded" true (Drive.degraded d);
  check Alcotest.int "one io error" 1 (Drive.io_errors d);
  (* The fault was one-shot: the retried sync must resume the flush
     without erasing the blocks that made it to disk before the fault
     (regression: the seed flush restarted from scratch and stored
     empty contents over already-flushed slots). *)
  expect_unit (Drive.handle d admin Rpc.Sync);
  (match Drive.handle d admin (Rpc.Read { oid; off = 0; len = 7; at = None }) with
   | Rpc.R_data b -> check Alcotest.string "data intact" "at risk" (Bytes.to_string b)
   | r -> Alcotest.failf "read: %a" Rpc.pp_resp r)

let test_torn_and_corrupt_rejected () =
  (* With every multi-sector write torn, flushed journal blocks fail
     their CRC on recovery: torn writes are detected, not trusted. *)
  let torn_disk = mk_disk () in
  let torn = Fault.create ~config:{ Fault.quiet with torn_write_rate = 1.0 } (Rng.create ~seed:4) in
  let log = Log.create torn_disk in
  Sim_disk.set_fault torn_disk (Some torn);
  ignore (Log.append log Tag.Journal ~data:(jb ~time:10) ());
  Log.sync log;
  Sim_disk.set_fault torn_disk None;
  check (Alcotest.list Alcotest.int) "torn block rejected" [] (jtimes (Log.reattach torn_disk));
  check Alcotest.bool "torn counted" true ((Fault.stats torn).Fault.torn_writes >= 1);
  (* Same for a silently flipped bit. *)
  let cor_disk = mk_disk () in
  let cor = Fault.create ~config:{ Fault.quiet with corrupt_rate = 1.0 } (Rng.create ~seed:5) in
  let log = Log.create cor_disk in
  Sim_disk.set_fault cor_disk (Some cor);
  ignore (Log.append log Tag.Journal ~data:(jb ~time:20) ());
  Log.sync log;
  Sim_disk.set_fault cor_disk None;
  check (Alcotest.list Alcotest.int) "corrupt block rejected" [] (jtimes (Log.reattach cor_disk));
  check Alcotest.bool "corruption counted" true ((Fault.stats cor).Fault.corruptions >= 1)

(* --- Log recovery ----------------------------------------------------- *)

(* Regression: the seed assigned crashed-open segments synthetic
   epochs by physical index. Two crashed segments where the lower
   index holds the NEWER data (segment reuse after cleaning) came back
   in the wrong order. *)
let poke_jb disk ~seg ~slot ~time =
  (* default log layout: 128 blocks/segment, one reserved segment,
     8 sectors/block *)
  let addr = 128 + (seg * 128) + slot in
  Sim_disk.poke disk ~lba:(addr * 8) ~data:(jb ~time)

let test_reattach_crashed_segments_in_write_order () =
  let disk = mk_disk () in
  (* Segment 1 was written first; segment 0 was reclaimed and reused
     later, so it holds the newest entries. Neither summary made it to
     disk. *)
  List.iteri (fun i time -> poke_jb disk ~seg:1 ~slot:i ~time) [ 1000; 1010; 1020 ];
  List.iteri (fun i time -> poke_jb disk ~seg:0 ~slot:i ~time) [ 3000; 3010; 3020 ];
  let log = Log.reattach disk in
  check (Alcotest.list Alcotest.int) "journal in write order"
    [ 1000; 1010; 1020; 3000; 3010; 3020 ]
    (jtimes log)

let test_reattach_epoch_counter_advances_past_crashed () =
  let disk = mk_disk () in
  List.iteri (fun i time -> poke_jb disk ~seg:0 ~slot:i ~time) [ 1000; 1010; 1020 ];
  let log = Log.reattach disk in
  (* Post-recovery appends must sort AFTER the crashed segment's
     entries (regression: the fresh segment's epoch restarted below
     the crashed segments' synthetic max_int epochs). *)
  ignore (Log.append log Tag.Journal ~data:(jb ~time:5000) ());
  Log.sync log;
  check (Alcotest.list Alcotest.int) "new appends sort last" [ 1000; 1010; 1020; 5000 ]
    (jtimes log);
  let epochs =
    Log.segments log |> Array.to_list
    |> List.filter (fun s -> s.Log.seg_state <> Log.Free)
    |> List.map (fun s -> s.Log.seg_epoch)
  in
  let rec strictly_increasing = function
    | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
    | _ -> true
  in
  check Alcotest.bool "epochs distinct and ordered" true
    (strictly_increasing (List.sort compare epochs) && List.length epochs = 2)

(* Property: crash the log at EVERY write boundary of a small workload
   and recover. The recovered journal must be a prefix of the append
   order and must include everything covered by the last completed
   sync. *)
let test_log_crash_every_boundary () =
  let appends = 36 in
  let workload log ~on_append ~on_sync =
    for i = 0 to appends - 1 do
      let time = (i + 1) * 10 in
      ignore (Log.append log Tag.Journal ~data:(jb ~time) ());
      on_append time;
      if i mod 3 = 2 then begin
        Log.sync log;
        on_sync ()
      end
    done
  in
  let dry_disk = mk_disk () in
  let dry_log = Log.create dry_disk in
  let base = (Sim_disk.stats dry_disk).Sim_disk.writes in
  workload dry_log ~on_append:(fun _ -> ()) ~on_sync:(fun () -> ());
  let span = (Sim_disk.stats dry_disk).Sim_disk.writes - base in
  check Alcotest.bool "workload writes" true (span >= appends);
  let rec is_prefix xs ys =
    match (xs, ys) with
    | [], _ -> true
    | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
    | _ :: _, [] -> false
  in
  for k = 1 to span do
    let disk = mk_disk () in
    let log = Log.create disk in
    let pol = Fault.create (Rng.create ~seed:k) in
    Sim_disk.set_fault disk (Some pol);
    Fault.schedule_crash pol ~after_writes:k;
    let appended = ref [] in
    let synced = ref 0 in
    (try
       workload log
         ~on_append:(fun time -> appended := time :: !appended)
         ~on_sync:(fun () -> synced := List.length !appended)
     with Fault.Crashed -> ());
    Sim_disk.set_fault disk None;
    let got = jtimes (Log.reattach disk) in
    if not (is_prefix got (List.rev !appended)) then
      Alcotest.failf "crash@%d: recovered journal is not a prefix of the append order" k;
    if List.length got < !synced then
      Alcotest.failf "crash@%d: synced blocks lost (%d recovered < %d synced)" k
        (List.length got) !synced
  done

(* --- Crash-recovery harness ------------------------------------------ *)

let fail_first what = function
  | [] -> ()
  | r :: _ as failed ->
    Alcotest.failf "%s: %d crash points violated invariants; first: %a" what (List.length failed)
      Crashtest.pp_report r

let test_crash_harness_sweeps () =
  (* Every crash point of one workload, plus randomized (seed, crash
     point) pairs: at least 100 distinct crash-recovery cycles. *)
  let boundary = Crashtest.boundary_sweep ~seed:42 () in
  let runs = max 40 (105 - List.length boundary) in
  let random = Crashtest.sweep ~seed:7 ~runs () in
  let all = boundary @ random in
  check Alcotest.bool "at least 100 crash points" true (List.length all >= 100);
  check Alcotest.bool "every run crashed" true
    (List.for_all (fun r -> r.Crashtest.crashed) all);
  check Alcotest.bool "window-survival exercised" true
    (List.exists (fun r -> r.Crashtest.snapshots > 0) all);
  check Alcotest.bool "audit continuity exercised" true
    (List.exists (fun r -> r.Crashtest.audit_checked > 0) all);
  fail_first "sweep" (Crashtest.failed_reports all)

let test_crash_harness_no_crash_control () =
  (* Control: with the crash disabled the workload's own in-flight
     read checks must pass. *)
  let r = Crashtest.run ~seed:42 ~crash_after:0 () in
  check Alcotest.bool "did not crash" false r.Crashtest.crashed;
  check (Alcotest.list Alcotest.string) "no violations" [] r.Crashtest.violations

(* --- Sharded array: crash mid-rebalance ------------------------------ *)

let test_rebalance_crash_no_crash_control () =
  (* Control: with the crash disabled, the migration drains fully and
     the workload's own in-flight checks pass. *)
  let r = Crashtest.rebalance_run ~seed:19 ~crash_after:0 () in
  check Alcotest.bool "did not crash" false r.Crashtest.crashed;
  check (Alcotest.list Alcotest.string) "no violations" [] r.Crashtest.violations

let test_rebalance_crash_boundaries () =
  (* Crash the array at the first and last write the migration issues
     on the new drive — the two extreme recovery states (nothing
     durable on the new shard vs. cutover nearly complete). *)
  let seed = 19 in
  let span = Crashtest.rebalance_writes ~seed () in
  check Alcotest.bool "migration writes the new drive" true (span > 0);
  List.iter
    (fun crash_after ->
      let r = Crashtest.rebalance_run ~seed ~crash_after () in
      check Alcotest.bool "crashed" true r.Crashtest.crashed;
      check Alcotest.bool "window survival exercised" true (r.Crashtest.snapshots > 0);
      if r.Crashtest.violations <> [] then
        Alcotest.failf "rebalance crash@%d: %a" crash_after Crashtest.pp_report r)
    [ 1; span ]

let test_rebalance_crash_sweep () =
  let rs = Crashtest.rebalance_sweep ~seed:31 ~runs:6 () in
  check Alcotest.bool "every run crashed" true
    (List.for_all (fun r -> r.Crashtest.crashed) rs);
  check Alcotest.bool "window-survival exercised" true
    (List.exists (fun r -> r.Crashtest.snapshots > 0) rs);
  fail_first "rebalance sweep" (Crashtest.failed_reports rs)

(* --- Mirror resync under partial failure ----------------------------- *)

let test_resync_partial_failure_regression () =
  (* The secondary's first disk write during replay fails permanently,
     aborting the resync partway. Retrying must converge: the seed
     code replayed the already-applied prefix again (double-applying
     the Appends) and diverged the replicas. *)
  let r = Crashtest.resync_run ~seed:5 ~fail_writes:1 () in
  check Alcotest.bool "first resync failed" true r.Crashtest.first_error;
  check Alcotest.bool "needed more than one attempt" true (r.Crashtest.attempts > 1);
  check (Alcotest.list Alcotest.string) "converged with no divergence" []
    r.Crashtest.r_violations

let test_resync_sweep () =
  let rs = Crashtest.resync_sweep ~seed:11 ~runs:12 () in
  List.iter
    (fun r ->
      if r.Crashtest.r_violations <> [] then
        Alcotest.failf "resync seed=%d fail_writes=%d: %s" r.Crashtest.r_seed
          r.Crashtest.fail_writes
          (String.concat "; " r.Crashtest.r_violations))
    rs;
  check Alcotest.bool "failure path exercised" true
    (List.exists (fun r -> r.Crashtest.first_error) rs)

(* --- Trace checker over crash-recovery ------------------------------- *)

module Trace = S4_obs.Trace

let test_trace_checker_crash_recovery () =
  (* The span tracer stays on across crash, recovery and verification;
     the crashtest report then folds Check.run violations (prefixed
     "trace:") into its own invariant list. *)
  Trace.clear ();
  Trace.enable ();
  Fun.protect ~finally:Trace.disable (fun () ->
      let r = Crashtest.run ~seed:42 ~crash_after:5 () in
      check Alcotest.bool "scenario crashed" true r.Crashtest.crashed;
      check Alcotest.bool "spans recorded" true (Trace.count () > 0);
      check (Alcotest.list Alcotest.string) "no violations (incl. trace checker)" []
        r.Crashtest.violations);
  Trace.clear ()

(* --- Throttle fixes ---------------------------------------------------- *)

let test_throttle_zero_penalty_at_threshold () =
  let clock = Simclock.create () in
  let th = Throttle.create clock in
  Throttle.note_write th ~client:1 ~bytes:1_000_000;
  Throttle.set_pool_pressure th 0.8 (* exactly default pressure_threshold *);
  check Alcotest.bool "throttled" true (Throttle.is_throttled th ~client:1);
  check Alcotest.int64 "no penalty exactly at threshold" 0L (Throttle.penalty th ~client:1);
  Throttle.set_pool_pressure th 1.0;
  check Alcotest.bool "full pressure penalises" true
    (Int64.compare (Throttle.penalty th ~client:1) 0L > 0)

let test_throttle_prunes_decayed_counters () =
  let clock = Simclock.create () in
  let th = Throttle.create clock in
  for c = 1 to 1500 do
    Throttle.note_write th ~client:c ~bytes:4096
  done;
  check Alcotest.bool "tracks active clients" true (Throttle.tracked_clients th >= 1500);
  (* 100 half-lives: every counter decays to nothing. *)
  Simclock.advance clock (Int64.mul 100L 10_000_000_000L);
  for _ = 1 to 1100 do
    Throttle.note_write th ~client:9999 ~bytes:4096
  done;
  check Alcotest.bool "decayed counters pruned" true (Throttle.tracked_clients th <= 2)

let () =
  Alcotest.run "s4_crash"
    [
      ( "fault",
        [
          Alcotest.test_case "scheduled crash" `Quick test_scheduled_crash;
          Alcotest.test_case "transient faults retried" `Quick test_drive_retries_transient;
          Alcotest.test_case "permanent faults surfaced" `Quick test_drive_surfaces_permanent;
          Alcotest.test_case "torn + corrupt rejected" `Quick test_torn_and_corrupt_rejected;
        ] );
      ( "log-recovery",
        [
          Alcotest.test_case "crashed segments in write order" `Quick
            test_reattach_crashed_segments_in_write_order;
          Alcotest.test_case "epoch counter advances past crashed" `Quick
            test_reattach_epoch_counter_advances_past_crashed;
          Alcotest.test_case "crash at every write boundary" `Quick
            test_log_crash_every_boundary;
        ] );
      ( "crash-harness",
        [
          Alcotest.test_case "100+ randomized crash points" `Quick test_crash_harness_sweeps;
          Alcotest.test_case "no-crash control" `Quick test_crash_harness_no_crash_control;
          Alcotest.test_case "trace checker over crash recovery" `Quick
            test_trace_checker_crash_recovery;
        ] );
      ( "rebalance-crash",
        [
          Alcotest.test_case "no-crash control" `Quick test_rebalance_crash_no_crash_control;
          Alcotest.test_case "first and last write boundaries" `Quick
            test_rebalance_crash_boundaries;
          Alcotest.test_case "randomized crash points" `Quick test_rebalance_crash_sweep;
        ] );
      ( "mirror-resync",
        [
          Alcotest.test_case "partial failure regression" `Quick
            test_resync_partial_failure_regression;
          Alcotest.test_case "randomized partial failures" `Quick test_resync_sweep;
        ] );
      ( "throttle",
        [
          Alcotest.test_case "zero penalty at threshold" `Quick
            test_throttle_zero_penalty_at_threshold;
          Alcotest.test_case "prunes decayed counters" `Quick
            test_throttle_prunes_decayed_counters;
        ] );
    ]
