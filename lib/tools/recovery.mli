(** Point-in-time restoration from the history pool.

    Restoration is copy-forward: the drive copies an old version into a
    {e new} current version (the paper's "the old version of the object
    can be completely restored by requesting that the drive copy
    forward the old version, thus making a new version"). Nothing is
    ever rolled back destructively — the intruder's writes remain in
    the history pool as evidence. *)

type t

type report = {
  files_restored : int;
  files_removed : int;  (** entries deleted because they did not exist at the target time *)
  dirs_restored : int;
  bytes_restored : int;
}

val create : ?cred:S4.Rpc.credential -> S4.Drive.t -> t

val of_target : ?cred:S4.Rpc.credential -> Target.t -> t
(** Same, over a drive or a whole sharded array (restoration RPCs are
    routed by the array exactly like client traffic). *)

val restore_file : t -> at:int64 -> Nfs_fh.fh -> (int, string) result
(** Copy one object's contents, attributes and ACL at [at] forward to
    the current version; returns bytes restored. ACL slots added since
    [at] are overwritten with inert (nothing-granting) entries, since
    [Set_acl] cannot shorten the list. The object must still
    exist as an object (possibly deleted-in-window). For deleted
    objects a fresh object is created and returned through
    {!restore_tree}'s directory relinking; at this level restoring a
    deleted object is an error. *)

val restore_tree : t -> at:int64 -> path:string -> (report, string) result
(** Make the subtree under [path] identical to its state at [at]:
    files that existed then are restored (recreated if they were
    deleted — resurrecting "scrubbed" logs and short-lived exploit
    tools), entries created since are removed, directories are
    recursed, and per-object attributes and ACLs (timestomped mtimes,
    intruder-granted permissions) are rolled back with the data. The
    restoration itself is versioned and audited like any other client
    activity. [path = ""] restores the whole partition from the
    root. *)

val pp_report : Format.formatter -> report -> unit
