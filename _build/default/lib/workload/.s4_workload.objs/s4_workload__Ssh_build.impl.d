lib/workload/ssh_build.ml: Array Bytes Filename Format List Option Printf S4_nfs S4_util Systems
