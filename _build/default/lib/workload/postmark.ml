module Rng = S4_util.Rng
module N = S4_nfs.Nfs_types
module Server = S4_nfs.Server

type config = {
  files : int;
  transactions : int;
  subdirectories : int;
  min_size : int;
  max_size : int;
  seed : int;
  cleaner_every : int option;
}

let default =
  {
    files = 5_000;
    transactions = 20_000;
    subdirectories = 10;
    min_size = 512;
    max_size = 9_216;
    seed = 4242;
    cleaner_every = None;
  }

type result = {
  system : string;
  creation_seconds : float;
  transaction_seconds : float;
  files_created : int;
  files_deleted : int;
  files_read : int;
  files_appended : int;
  bytes_read : int;
  bytes_written : int;
  transactions_per_second : float;
}

(* Live file table with O(1) random removal (swap with last). *)
type file = { mutable name : string; dir : N.fh; fh : N.fh; mutable size : int }

type state = {
  sys : Systems.t;
  rng : Rng.t;
  cfg : config;
  dirs : N.fh array;
  mutable table : file array;
  mutable count : int;
  mutable serial : int;
  buffer : Bytes.t;
  mutable created : int;
  mutable deleted : int;
  mutable reads : int;
  mutable appends : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
}

let handle st req = Server.handle_exn st.sys.Systems.server req

let fresh_name st =
  st.serial <- st.serial + 1;
  Printf.sprintf "pm%06d" st.serial

let pick_size st = Rng.int_in st.rng ~min:st.cfg.min_size ~max:st.cfg.max_size

let add_file st f =
  if st.count = Array.length st.table then begin
    let bigger = Array.make (max 16 (2 * st.count)) f in
    Array.blit st.table 0 bigger 0 st.count;
    st.table <- bigger
  end;
  st.table.(st.count) <- f;
  st.count <- st.count + 1

let remove_at st i =
  let f = st.table.(i) in
  st.count <- st.count - 1;
  st.table.(i) <- st.table.(st.count);
  f

let do_create st =
  let dir = Rng.pick st.rng st.dirs in
  let name = fresh_name st in
  let size = pick_size st in
  match handle st (N.Create { dir; name; mode = 0o644 }) with
  | N.R_fh (fh, _) ->
    ignore (handle st (N.Write { fh; off = 0; data = Bytes.sub st.buffer 0 size }));
    add_file st { name; dir; fh; size };
    st.created <- st.created + 1;
    st.bytes_written <- st.bytes_written + size
  | _ -> failwith "postmark: create"

let do_delete st =
  if st.count > 0 then begin
    let f = remove_at st (Rng.int st.rng st.count) in
    ignore (handle st (N.Remove { dir = f.dir; name = f.name }));
    st.deleted <- st.deleted + 1
  end

let do_read st =
  if st.count > 0 then begin
    let f = st.table.(Rng.int st.rng st.count) in
    (match handle st (N.Read { fh = f.fh; off = 0; len = f.size }) with
     | N.R_data b -> st.bytes_read <- st.bytes_read + Bytes.length b
     | _ -> failwith "postmark: read");
    st.reads <- st.reads + 1
  end

let do_append st =
  if st.count > 0 then begin
    let f = st.table.(Rng.int st.rng st.count) in
    let len = pick_size st in
    ignore (handle st (N.Write { fh = f.fh; off = f.size; data = Bytes.sub st.buffer 0 len }));
    f.size <- f.size + len;
    st.appends <- st.appends + 1;
    st.bytes_written <- st.bytes_written + len
  end

let run ?(config = default) sys =
  let rng = Rng.create ~seed:config.seed in
  let dirs =
    Array.init config.subdirectories (fun i ->
        match
          Server.handle_exn sys.Systems.server
            (N.Mkdir { dir = sys.Systems.server.Server.root; name = Printf.sprintf "s%02d" i; mode = 0o755 })
        with
        | N.R_fh (fh, _) -> fh
        | _ -> failwith "postmark: mkdir")
  in
  let st =
    {
      sys;
      rng;
      cfg = config;
      dirs;
      table = Array.make (config.files + 16) { name = ""; dir = 0L; fh = 0L; size = 0 };
      count = 0;
      serial = 0;
      buffer = Bytes.make (config.max_size + 1) 'p';
      created = 0;
      deleted = 0;
      reads = 0;
      appends = 0;
      bytes_read = 0;
      bytes_written = 0;
    }
  in
  st.count <- 0;
  let creation_seconds, () =
    Systems.elapsed_seconds sys (fun () ->
        for i = 1 to config.files do
          do_create st;
          (* Directory-block churn builds history during creation too:
             let the cleaner wake under space pressure. *)
          (match config.cleaner_every with
           | Some _ -> if i land 63 = 0 then Systems.ensure_space sys ~min_free_segments:24
           | None -> ())
        done)
  in
  let transaction_seconds, () =
    Systems.elapsed_seconds sys (fun () ->
        for txn = 1 to config.transactions do
          (* One create-or-delete plus one read-or-append (PostMark's
             two sub-transactions, equal bias). *)
          if Rng.bool st.rng then do_create st else do_delete st;
          if Rng.bool st.rng then do_read st else do_append st;
          (match config.cleaner_every with
           | Some n ->
             if txn mod n = 0 then Systems.run_cleaner sys;
             (* Space-pressure wakeups between periodic runs. *)
             if txn land 15 = 0 then Systems.ensure_space sys ~min_free_segments:24
           | None -> ())
        done)
  in
  {
    system = sys.Systems.name;
    creation_seconds;
    transaction_seconds;
    files_created = st.created + config.files;
    files_deleted = st.deleted;
    files_read = st.reads;
    files_appended = st.appends;
    bytes_read = st.bytes_read;
    bytes_written = st.bytes_written;
    transactions_per_second =
      (if transaction_seconds > 0.0 then float_of_int config.transactions /. transaction_seconds
       else 0.0);
  }

let pp_result ppf r =
  Format.fprintf ppf "%-12s creation %7.2f s   transactions %8.2f s   (%6.1f txn/s)" r.system
    r.creation_seconds r.transaction_seconds r.transactions_per_second
