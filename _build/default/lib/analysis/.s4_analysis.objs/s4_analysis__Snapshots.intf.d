lib/analysis/snapshots.mli:
