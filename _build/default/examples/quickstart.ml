(* Quickstart: format a self-securing drive, store an object, overwrite
   it, then read the old version back and restore it.

   Run with: dune exec examples/quickstart.exe *)

module Simclock = S4_util.Simclock
module Geometry = S4_disk.Geometry
module Sim_disk = S4_disk.Sim_disk
module Drive = S4.Drive
module Rpc = S4.Rpc

let ( => ) what resp =
  match resp with
  | Rpc.R_error e -> Format.kasprintf failwith "%s failed: %a" what Rpc.pp_error e
  | r -> r

let () =
  (* A simulated 64 MB disk with the paper's Cheetah mechanics, and a
     freshly formatted S4 drive on it. *)
  let clock = Simclock.create () in
  let disk =
    Sim_disk.create ~geometry:(Geometry.with_capacity Geometry.cheetah_9gb ~bytes:(64 * 1024 * 1024)) clock
  in
  let drive = Drive.format disk in
  let alice = Rpc.user_cred ~user:1 ~client:1 in

  (* Create an object and write to it. *)
  let oid =
    match "create" => Drive.handle drive alice (Rpc.Create { acl = [] }) with
    | Rpc.R_oid oid -> oid
    | _ -> assert false
  in
  let write s =
    ignore
      ("write"
      => Drive.handle drive alice ~sync:true
           (Rpc.Write { oid; off = 0; len = String.length s; data = Some (Bytes.of_string s) }))
  in
  write "The first version of my file.";
  let t_first = Simclock.now clock in
  Printf.printf "wrote v1 at t=%Ld\n" t_first;

  (* Time passes; the file is overwritten. Every modification makes a
     new version — the drive never destroys the old one. *)
  Simclock.advance clock (Simclock.of_seconds 60.0);
  write "Version two CLOBBERS the file.";

  let read ?at () =
    match "read" => Drive.handle drive alice (Rpc.Read { oid; off = 0; len = 64; at }) with
    | Rpc.R_data b -> Bytes.to_string b
    | _ -> assert false
  in
  Printf.printf "current contents : %S\n" (read ());
  Printf.printf "contents at t=%Ld: %S\n" t_first (read ~at:t_first ());

  (* Restore by copying the old version forward (a new version again:
     nothing is ever rolled back destructively). *)
  let old = read ~at:t_first () in
  ignore ("truncate" => Drive.handle drive alice (Rpc.Truncate { oid; size = 0 }));
  write old;
  Printf.printf "after restore    : %S\n" (read ());

  (* The whole story is in the audit log. *)
  (match "audit" => Drive.handle drive Rpc.admin_cred (Rpc.Read_audit { since = 0L; until = Int64.max_int }) with
   | Rpc.R_audit records ->
     Printf.printf "\naudit log (%d records):\n" (List.length records);
     List.iter
       (fun (r : S4.Audit.record) ->
         Printf.printf "  t=%-12Ld user=%d %-10s %s %s\n" r.S4.Audit.at r.S4.Audit.user r.S4.Audit.op
           r.S4.Audit.info
           (if r.S4.Audit.ok then "" else "(DENIED)"))
       records
   | _ -> assert false);
  Format.printf "\n%a@." Drive.pp_stats drive
