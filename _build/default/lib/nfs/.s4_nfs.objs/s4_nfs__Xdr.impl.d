lib/nfs/xdr.ml: Buffer Bytes Format Int32 Int64 List Nfs_types Option S4_util String
