type t = {
  name : string;
  sector_size : int;
  sectors : int;
  rpm : int;
  track_sectors : int;
  min_seek_ms : float;
  avg_seek_ms : float;
  max_seek_ms : float;
  transfer_mb_s : float;
}

let cheetah_9gb =
  {
    name = "Seagate Cheetah 9LP (9GB, 10kRPM)";
    sector_size = 512;
    sectors = 17_783_240;
    rpm = 10_000;
    track_sectors = 334;
    min_seek_ms = 0.6;
    avg_seek_ms = 5.4;
    max_seek_ms = 10.5;
    transfer_mb_s = 21.0;
  }

let with_capacity t ~bytes =
  { t with sectors = (bytes + t.sector_size - 1) / t.sector_size }

let cheetah_2gb =
  { (with_capacity cheetah_9gb ~bytes:(2 * 1024 * 1024 * 1024)) with
    name = "Cheetah mechanics, 2GB address space" }

let modern_50gb =
  {
    name = "Modern 50GB (2000-era) drive";
    sector_size = 512;
    sectors = 97_656_250;
    rpm = 7200;
    track_sectors = 500;
    min_seek_ms = 0.8;
    avg_seek_ms = 8.5;
    max_seek_ms = 17.0;
    transfer_mb_s = 29.0;
  }

let capacity_bytes t = t.sectors * t.sector_size

(* On-disk codec, shared by the host-file image format
   (S4_tools.Disk_image) and the file-backed sector store header
   (File_disk). *)

module Bcodec = S4_util.Bcodec

let encode w t =
  Bcodec.w_string w t.name;
  Bcodec.w_int w t.sector_size;
  Bcodec.w_int w t.sectors;
  Bcodec.w_int w t.rpm;
  Bcodec.w_int w t.track_sectors;
  Bcodec.w_i64 w (Int64.bits_of_float t.min_seek_ms);
  Bcodec.w_i64 w (Int64.bits_of_float t.avg_seek_ms);
  Bcodec.w_i64 w (Int64.bits_of_float t.max_seek_ms);
  Bcodec.w_i64 w (Int64.bits_of_float t.transfer_mb_s)

let decode r =
  let name = Bcodec.r_string r in
  let sector_size = Bcodec.r_int r in
  let sectors = Bcodec.r_int r in
  let rpm = Bcodec.r_int r in
  let track_sectors = Bcodec.r_int r in
  let min_seek_ms = Int64.float_of_bits (Bcodec.r_i64 r) in
  let avg_seek_ms = Int64.float_of_bits (Bcodec.r_i64 r) in
  let max_seek_ms = Int64.float_of_bits (Bcodec.r_i64 r) in
  let transfer_mb_s = Int64.float_of_bits (Bcodec.r_i64 r) in
  if sector_size <= 0 || sector_size > 1 lsl 20 || sectors <= 0 then
    raise (Bcodec.Decode_error "Geometry.decode: implausible geometry");
  { name; sector_size; sectors; rpm; track_sectors; min_seek_ms; avg_seek_ms; max_seek_ms;
    transfer_mb_s }
let rotation_ms t = 60_000.0 /. float_of_int t.rpm

let seek_ms t ~distance_sectors =
  if distance_sectors = 0 then 0.0
  else begin
    let frac = float_of_int distance_sectors /. float_of_int t.sectors in
    let frac = if frac > 1.0 then 1.0 else frac in
    t.min_seek_ms +. ((t.max_seek_ms -. t.min_seek_ms) *. sqrt frac)
  end

let transfer_ms t ~bytes = float_of_int bytes /. (t.transfer_mb_s *. 1_000_000.0) *. 1000.0

let pp ppf t =
  Format.fprintf ppf "%s: %d sectors x %dB, %d RPM, seek %.1f/%.1f/%.1f ms, %.0f MB/s"
    t.name t.sectors t.sector_size t.rpm t.min_seek_ms t.avg_seek_ms t.max_seek_ms
    t.transfer_mb_s
