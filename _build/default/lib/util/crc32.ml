type t = int32

let polynomial = 0xEDB88320l

let table =
  lazy
    (let t = Array.make 256 0l in
     for n = 0 to 255 do
       let c = ref (Int32.of_int n) in
       for _ = 0 to 7 do
         if Int32.logand !c 1l <> 0l then
           c := Int32.logxor polynomial (Int32.shift_right_logical !c 1)
         else c := Int32.shift_right_logical !c 1
       done;
       t.(n) <- !c
     done;
     t)

let init = 0xFFFFFFFFl

let update acc b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Crc32.update";
  let table = Lazy.force table in
  let acc = ref acc in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !acc (Int32.of_int (Char.code (Bytes.unsafe_get b i)))) 0xFFl)
    in
    acc := Int32.logxor table.(idx) (Int32.shift_right_logical !acc 8)
  done;
  !acc

let finish acc = Int32.logxor acc 0xFFFFFFFFl

let sub b ~pos ~len = finish (update init b ~pos ~len)
let bytes b = sub b ~pos:0 ~len:(Bytes.length b)
let string s = bytes (Bytes.unsafe_of_string s)
