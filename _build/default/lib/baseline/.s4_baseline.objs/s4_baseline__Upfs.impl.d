lib/baseline/upfs.ml: Array Bytes Hashtbl Int64 List Option S4_disk S4_nfs S4_store S4_util String
