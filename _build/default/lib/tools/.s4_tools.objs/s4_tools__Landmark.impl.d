lib/tools/landmark.ml: Bytes Format List S4 S4_util
