module Bcodec = S4_util.Bcodec
module Simclock = S4_util.Simclock
module Chain = S4_integrity.Chain
module Rpc = S4.Rpc
module Drive = S4.Drive
module Audit = S4.Audit

type t = { target : Target.t; cred : Rpc.credential; index_oid : int64 }

type landmark = {
  l_name : string;
  l_source : int64;
  l_taken_at : int64;
  l_object : int64;
  l_bytes : int;
}

type mark = {
  m_name : string;
  m_at : int64;
  m_heads : (int * int * Chain.head) list;
}

let err fmt = Format.kasprintf (fun s -> Error s) fmt

exception Fail of string

let call_exn t req =
  match Target.handle t.target t.cred req with
  | Rpc.R_error e -> raise (Fail (Format.asprintf "%s: %a" (Rpc.op_name req) Rpc.pp_error e))
  | resp -> resp

let partition = "landmarks"

let fail_create fmt =
  Format.kasprintf (fun s -> failwith ("Landmark.create: " ^ s)) fmt

let of_target ?(cred = Rpc.admin_cred) target =
  let probe = { target; cred; index_oid = 0L } in
  let index_oid =
    match Target.handle target cred (Rpc.P_mount { name = partition; at = None }) with
    | Rpc.R_oid oid -> oid
    | Rpc.R_error Rpc.Not_found ->
      (match Target.handle target cred (Rpc.Create { acl = [] }) with
       | Rpc.R_oid oid ->
         (match Target.handle target cred (Rpc.P_create { name = partition; oid }) with
          | Rpc.R_unit -> oid
          | Rpc.R_error e ->
            fail_create "cannot register partition %S: %a" partition Rpc.pp_error e
          | r -> fail_create "pcreate %S: unexpected response %a" partition Rpc.pp_resp r)
       | Rpc.R_error e -> fail_create "cannot allocate index object: %a" Rpc.pp_error e
       | r -> fail_create "create: unexpected response %a" Rpc.pp_resp r)
    | Rpc.R_error e -> fail_create "pmount %S: %a" partition Rpc.pp_error e
    | r -> fail_create "pmount %S: unexpected response %a" partition Rpc.pp_resp r
  in
  (* A stale partition entry can name a dead or missing object (e.g.
     deleted behind the tool's back); catch it here with a clear
     diagnostic rather than letting every later call fail obscurely. *)
  (match Target.handle target cred (Rpc.Get_attr { oid = index_oid; at = None }) with
   | Rpc.R_attr _ -> ()
   | Rpc.R_error e ->
     fail_create "index object %Ld (partition %S) is unusable: %a" index_oid partition
       Rpc.pp_error e
   | r -> fail_create "index object %Ld: unexpected response %a" index_oid Rpc.pp_resp r);
  ignore probe;
  { target; cred; index_oid }

let create ?cred drive = of_target ?cred (Target.Drive drive)

(* --- index codec ------------------------------------------------------ *)

let encode_index landmarks marks =
  let w = Bcodec.writer () in
  Bcodec.w_int w (List.length landmarks);
  List.iter
    (fun l ->
      Bcodec.w_string w l.l_name;
      Bcodec.w_i64 w l.l_source;
      Bcodec.w_i64 w l.l_taken_at;
      Bcodec.w_i64 w l.l_object;
      Bcodec.w_int w l.l_bytes)
    landmarks;
  (* Cross-shard marks follow the per-object landmarks; indexes written
     before marks existed simply end here. *)
  Bcodec.w_int w (List.length marks);
  List.iter
    (fun m ->
      Bcodec.w_string w m.m_name;
      Bcodec.w_i64 w m.m_at;
      Bcodec.w_int w (List.length m.m_heads);
      List.iter
        (fun (sid, ri, head) ->
          Bcodec.w_int w sid;
          Bcodec.w_int w ri;
          Chain.write_head w head)
        m.m_heads)
    marks;
  Bcodec.contents w

let decode_index b =
  if Bytes.length b = 0 then ([], [])
  else begin
    let r = Bcodec.reader b in
    let n = Bcodec.r_int r in
    let landmarks =
      List.init n (fun _ ->
          let l_name = Bcodec.r_string r in
          let l_source = Bcodec.r_i64 r in
          let l_taken_at = Bcodec.r_i64 r in
          let l_object = Bcodec.r_i64 r in
          let l_bytes = Bcodec.r_int r in
          { l_name; l_source; l_taken_at; l_object; l_bytes })
    in
    let marks =
      if Bcodec.remaining r = 0 then []
      else begin
        let n = Bcodec.r_int r in
        List.init n (fun _ ->
            let m_name = Bcodec.r_string r in
            let m_at = Bcodec.r_i64 r in
            let k = Bcodec.r_int r in
            let m_heads =
              List.init k (fun _ ->
                  let sid = Bcodec.r_int r in
                  let ri = Bcodec.r_int r in
                  let head = Chain.read_head r in
                  (sid, ri, head))
            in
            { m_name; m_at; m_heads })
      end
    in
    (landmarks, marks)
  end

let read_whole t oid =
  match call_exn t (Rpc.Get_attr { oid; at = None }) with
  | Rpc.R_attr _ ->
    let rec read_size guess =
      match call_exn t (Rpc.Read { oid; off = 0; len = guess; at = None }) with
      | Rpc.R_data b when Bytes.length b < guess -> b
      | Rpc.R_data b ->
        if guess >= 1 lsl 26 then b else read_size (guess * 4)
      | _ -> raise (Fail "read")
    in
    read_size 65536
  | _ -> raise (Fail "getattr")

let load t =
  try decode_index (read_whole t t.index_oid) with Fail _ | Bcodec.Decode_error _ -> ([], [])

let list t = fst (load t)
let marks t = snd (load t)

let write_index t landmarks marks =
  let data = encode_index landmarks marks in
  ignore (call_exn t (Rpc.Truncate { oid = t.index_oid; size = 0 }));
  ignore
    (call_exn t (Rpc.Write { oid = t.index_oid; off = 0; len = Bytes.length data; data = Some data }));
  match Target.handle t.target t.cred Rpc.Sync with _ -> ()

let find t name = List.find_opt (fun l -> l.l_name = name) (list t)
let find_mark t name = List.find_opt (fun m -> m.m_name = name) (marks t)

let take t ~name ~at oid =
  try
    if find t name <> None then err "landmark %S already exists" name
    else begin
      (* Preserve the version's contents and attributes. *)
      let attr =
        match call_exn t (Rpc.Get_attr { oid; at = Some at }) with
        | Rpc.R_attr b -> b
        | _ -> raise (Fail "getattr at")
      in
      let data =
        match call_exn t (Rpc.Read { oid; off = 0; len = 1 lsl 26; at = Some at }) with
        | Rpc.R_data b -> b
        | _ -> raise (Fail "read at")
      in
      let archive =
        match call_exn t (Rpc.Create { acl = [] }) with
        | Rpc.R_oid o -> o
        | _ -> raise (Fail "create")
      in
      if Bytes.length data > 0 then
        ignore
          (call_exn t (Rpc.Write { oid = archive; off = 0; len = Bytes.length data; data = Some data }));
      if Bytes.length attr > 0 then ignore (call_exn t (Rpc.Set_attr { oid = archive; attr }));
      let l =
        { l_name = name; l_source = oid; l_taken_at = at; l_object = archive;
          l_bytes = Bytes.length data }
      in
      let lms, mks = load t in
      write_index t (l :: lms) mks;
      Ok l
    end
  with Fail m -> Error m

let contents t name =
  match find t name with
  | None -> err "no landmark %S" name
  | Some l -> (try Ok (read_whole t l.l_object) with Fail m -> Error m)

let restore_to t name target =
  match contents t name with
  | Error m -> Error m
  | Ok data ->
    (try
       ignore (call_exn t (Rpc.Truncate { oid = target; size = 0 }));
       if Bytes.length data > 0 then
         ignore
           (call_exn t (Rpc.Write { oid = target; off = 0; len = Bytes.length data; data = Some data }));
       ignore (call_exn t Rpc.Sync);
       Ok (Bytes.length data)
     with Fail m -> Error m)

(* --- cross-shard marks ------------------------------------------------ *)

let mark t ~name =
  if find_mark t name <> None then err "mark %S already exists" name
  else
    match Target.landmark_barrier t.target with
    | Error m -> Error m
    | Ok heads ->
      let m = { m_name = name; m_at = Simclock.now (Target.clock t.target); m_heads = heads } in
      (try
         let lms, mks = load t in
         write_index t lms (m :: mks);
         Ok m
       with Fail e -> Error e)

let verify_since t (m : mark) =
  let entries = Target.members t.target in
  let errs =
    List.filter_map
      (fun (sid, ri, head) ->
        match List.find_opt (fun (s, r, _) -> s = sid && r = ri) entries with
        | None ->
          Some (Printf.sprintf "mark %S: member %d/%d is missing from the array" m.m_name sid ri)
        | Some (_, _, d) ->
          if not (Audit.enabled (Drive.audit d)) then
            Some (Printf.sprintf "mark %S: member %d/%d no longer audits" m.m_name sid ri)
          else begin
            let v = Audit.verify ~from:head (Drive.audit d) in
            if Chain.clean v then None
            else
              Some
                (Printf.sprintf "shard %d/%d since mark %S: %s" sid ri m.m_name
                   (String.concat "; " v.Chain.v_errors))
          end)
      m.m_heads
  in
  if errs = [] then Ok () else Error errs

let pp_mark ppf m =
  Format.fprintf ppf "mark %S at %.3fs over %d chains [%a]" m.m_name
    (Int64.to_float m.m_at /. 1e9)
    (List.length m.m_heads)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       (fun ppf (sid, ri, h) -> Format.fprintf ppf "%d/%d: %a" sid ri Chain.pp_head h))
    m.m_heads
