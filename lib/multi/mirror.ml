module Rpc = S4.Rpc
module Audit = S4.Audit
module Drive = S4.Drive
module Store = S4_store.Obj_store
module Sim_disk = S4_disk.Sim_disk
module Log = S4_seglog.Log

type replica = Primary | Secondary
type read_policy = Primary_only | Balanced

type t = {
  primary : Drive.t;
  secondary : Drive.t;
  mutable primary_failed : bool;
  mutable secondary_failed : bool;
  (* Newest first. The [int64 option] is the oid the live replica
     resolved for a [Create]: replay must target that oid, not mint a
     fresh one from whatever allocator the target runs. *)
  mutable missed : (Rpc.credential * bool * Rpc.req * int64 option) list;
  mutable lagging : replica option;  (* who the missed mutations are for *)
  mutable read_policy : read_policy;
  mutable rr_next : replica;  (* next balanced read goes here *)
  (* Freshness index over [missed], kept in sync with it: a balanced
     read may only touch the lagging replica when nothing journalled
     could have changed what that read observes. *)
  missed_oids : (int64, unit) Hashtbl.t;
  mutable missed_namespace : bool;  (* a P_create/P_delete is journalled *)
  mutable missed_global : bool;  (* a Sync/Flush/Set_window is journalled *)
  mutable primary_reads : int;
  mutable secondary_reads : int;
}

let create primary secondary =
  (* Mirrored writes happen in parallel: only the primary's disk time
     is charged to the shared clock. *)
  Sim_disk.set_phantom (Log.disk (Drive.log secondary)) true;
  {
    primary;
    secondary;
    primary_failed = false;
    secondary_failed = false;
    missed = [];
    lagging = None;
    read_policy = Primary_only;
    rr_next = Primary;
    missed_oids = Hashtbl.create 64;
    missed_namespace = false;
    missed_global = false;
    primary_reads = 0;
    secondary_reads = 0;
  }

let drive t = function Primary -> t.primary | Secondary -> t.secondary
let is_failed t = function Primary -> t.primary_failed | Secondary -> t.secondary_failed
let lagging t = t.lagging

let set_failed t r v =
  match r with
  | Primary -> t.primary_failed <- v
  | Secondary -> t.secondary_failed <- v

let lag t = List.length t.missed

let set_read_policy t p = t.read_policy <- p
let read_policy t = t.read_policy
let read_counts t = (t.primary_reads, t.secondary_reads)

let other = function Primary -> Secondary | Secondary -> Primary

(* While one replica lags, the other is the authoritative copy; in sync
   the primary is, by convention (it keeps balanced and primary-only
   runs answering audit-class reads identically). *)
let authoritative t =
  match t.lagging with Some r -> other r | None -> Primary

let index_missed_req t req resolved =
  match req with
  | Rpc.Create _ -> (
    match resolved with
    | Some g -> Hashtbl.replace t.missed_oids g ()
    | None -> t.missed_global <- true)
  | Rpc.Delete { oid }
  | Rpc.Write { oid; _ }
  | Rpc.Append { oid; _ }
  | Rpc.Truncate { oid; _ }
  | Rpc.Set_attr { oid; _ }
  | Rpc.Set_acl { oid; _ }
  | Rpc.Flush_object { oid; _ } -> Hashtbl.replace t.missed_oids oid ()
  | Rpc.P_create _ | Rpc.P_delete _ -> t.missed_namespace <- true
  | Rpc.Sync | Rpc.Flush _ | Rpc.Set_window _ -> t.missed_global <- true
  | _ -> ()

let refresh_missed_index t =
  Hashtbl.reset t.missed_oids;
  t.missed_namespace <- false;
  t.missed_global <- false;
  List.iter (fun (_, _, req, resolved) -> index_missed_req t req resolved) t.missed

(* Reads eligible for replica balancing. Audit-trail reads are not:
   each replica audits only the reads it served, so [Read_audit] and
   [Verify_log] must always see the authoritative replica's log. *)
let balanceable = function
  | Rpc.Read _ | Rpc.Get_attr _ | Rpc.Get_acl_by_user _ | Rpc.Get_acl_by_index _
  | Rpc.P_list _ | Rpc.P_mount _ -> true
  | _ -> false

(* The freshness rule: a read may be served by the lagging replica only
   when no journalled mutation could change what it observes. *)
let read_is_stale t req =
  t.missed_global
  ||
  match req with
  | Rpc.Read { oid; _ }
  | Rpc.Get_attr { oid; _ }
  | Rpc.Get_acl_by_user { oid; _ }
  | Rpc.Get_acl_by_index { oid; _ } -> Hashtbl.mem t.missed_oids oid
  | Rpc.P_list _ | Rpc.P_mount _ -> t.missed_namespace
  | _ -> true

let is_mutation = Rpc.is_mutation

(* A replica answering [Io_error] has hit a permanent media fault the
   drive's own retry could not absorb: treat it as failed. *)
let is_io_error = function Rpc.R_error (Rpc.Io_error _) -> true | _ -> false

(* Responses must agree in kind and payload (oids in particular). *)
let agree (a : Rpc.resp) (b : Rpc.resp) =
  match (a, b) with
  | Rpc.R_audit _, Rpc.R_audit _ -> true  (* timestamps differ benignly *)
  | _ -> a = b

(* Audit records of these ops live only on the replica that served
   them — exactly the balanceable read class. Mutations and admin
   commands are audited on every live replica and must not be
   double-counted when merging. *)
let served_read_ops =
  [ "read"; "getattr"; "getacl_user"; "getacl_index"; "plist"; "pmount" ]

(* Forensic completeness under balancing: a [Read_audit] answered by
   the authoritative replica alone would miss the reads the peer
   served, so merge the peer's read-class records into the answer
   (both logs are chronological; so is the merge). The peer is
   consulted directly — a forensic sweep of its log is not a balanced
   data read and does not move the read counters. *)
let merge_read_audit t cred sync req ~target resp =
  match (req, resp) with
  | Rpc.Read_audit _, Rpc.R_audit auth_recs when not (is_failed t (other target)) -> (
    match Drive.handle (drive t (other target)) cred ~sync req with
    | Rpc.R_audit peer_recs ->
      let extra =
        List.filter (fun r -> List.mem r.Audit.op served_read_ops) peer_recs
      in
      Rpc.R_audit
        (List.merge (fun a b -> compare a.Audit.at b.Audit.at) auth_recs extra)
    | _ -> resp)
  | _ -> resp

(* Journal a mutation the [lagger] missed, keyed to the oid the live
   replica resolved (so a missed [Create] replays onto the same id). *)
let journal t lagger cred sync req resp =
  let oid = match resp with Rpc.R_oid g -> Some g | _ -> None in
  t.lagging <- Some lagger;
  t.missed <- (cred, sync, req, oid) :: t.missed;
  index_missed_req t req oid

let handle t cred ?(sync = false) req =
  if is_mutation req then begin
    match (t.primary_failed, t.secondary_failed) with
    | true, true -> Rpc.R_error (Rpc.Bad_request "mirror: no live replica")
    | false, false ->
      let r1 = Drive.handle t.primary cred ~sync req in
      let r2 = Drive.handle t.secondary cred ~sync req in
      if agree r1 r2 then r1
      else if is_io_error r1 && not (is_io_error r2) then begin
        (* Primary media fault: fail it over and keep serving from the
           secondary, journalling the op the primary just missed. *)
        t.primary_failed <- true;
        journal t Primary cred sync req r2;
        r2
      end
      else if is_io_error r2 && not (is_io_error r1) then begin
        t.secondary_failed <- true;
        journal t Secondary cred sync req r1;
        r1
      end
      else begin
        (* Split brain: drop the secondary and flag the request. The
           primary applied the op, so its response keys the journal. *)
        t.secondary_failed <- true;
        journal t Secondary cred sync req r1;
        Rpc.R_error (Rpc.Bad_request "mirror: replica divergence detected")
      end
    | false, true ->
      let r = Drive.handle t.primary cred ~sync req in
      journal t Secondary cred sync req r;
      r
    | true, false ->
      let r = Drive.handle t.secondary cred ~sync req in
      journal t Primary cred sync req r;
      r
  end
  else begin
    let serve r =
      (match r with
       | Primary -> t.primary_reads <- t.primary_reads + 1
       | Secondary -> t.secondary_reads <- t.secondary_reads + 1);
      Drive.handle (drive t r) cred ~sync req
    in
    (* A lone live replica that happens to be the lagging one (repair
       without resync, then the peer died) must not silently answer a
       read the journal could change. *)
    let serve_sole r =
      if t.lagging = Some r && t.missed <> [] && read_is_stale t req then
        Rpc.R_error
          (Rpc.Io_error "mirror: only live replica lags on this read (resync required)")
      else serve r
    in
    match (t.primary_failed, t.secondary_failed) with
    | false, false ->
      let target =
        match t.read_policy with
        | Primary_only -> Primary
        | Balanced ->
          if not (balanceable req) then authoritative t
          else if t.missed <> [] && read_is_stale t req then authoritative t
          else begin
            let r = t.rr_next in
            t.rr_next <- other r;
            r
          end
      in
      let resp = serve target in
      if is_io_error resp then begin
        (* Read fault on the serving replica: fail it over. The
           failover must re-check the freshness rule — when the read
           was routed here precisely because the survivor's missed-op
           journal touches what it observes, answering from the
           survivor would silently serve stale data; surface the fault
           instead and let the operator resync. *)
        set_failed t target true;
        if t.lagging = None then t.lagging <- Some target;
        let survivor = other target in
        if t.lagging = Some survivor && t.missed <> [] && read_is_stale t req then resp
        else serve survivor
      end
      else merge_read_audit t cred sync req ~target resp
    | false, true -> serve_sole Primary
    | true, false -> serve_sole Secondary
    | true, true -> Rpc.R_error (Rpc.Bad_request "mirror: no live replica")
  end

let barrier t =
  (* End-of-batch durability barrier on every live replica. A replica
     whose barrier fails is failed over exactly like one answering
     [Io_error]: the batch is durable as long as one replica persisted
     it (its in-memory state is intact, so there is nothing to
     journal — later mutations will be). *)
  match (t.primary_failed, t.secondary_failed) with
  | true, true -> Some (Rpc.Bad_request "mirror: no live replica")
  | false, true -> Drive.barrier t.primary
  | true, false -> Drive.barrier t.secondary
  | false, false -> (
    let e1 = Drive.barrier t.primary in
    let e2 = Drive.barrier t.secondary in
    match (e1, e2) with
    | None, None -> None
    | Some _, None ->
      t.primary_failed <- true;
      if t.lagging = None then t.lagging <- Some Primary;
      None
    | None, Some _ ->
      t.secondary_failed <- true;
      if t.lagging = None then t.lagging <- Some Secondary;
      None
    | Some e, Some _ -> Some e)

let resp_ok = function Rpc.R_error _ -> false | _ -> true

let submit t cred ?(sync = false) reqs =
  let resps = Array.map (fun req -> handle t cred ~sync:false req) reqs in
  if sync && (Array.length reqs = 0 || Array.exists resp_ok resps) then
    match barrier t with
    | None -> resps
    | Some err ->
      Array.map (fun r -> if resp_ok r then Rpc.R_error err else r) resps
  else resps

let resync t =
  if t.primary_failed && t.secondary_failed then Error "mirror: no live replica to resync from"
  else
    match t.lagging with
    | None -> Ok 0
    | Some r when is_failed t r ->
      Error "mirror resync: repair the failed replica first (set_failed _ false)"
    | Some r ->
      let target = drive t r in
      let replay = List.rev t.missed in
      let rec go n = function
        | [] ->
          t.missed <- [];
          t.lagging <- None;
          refresh_missed_index t;
          Ok n
        | (cred, sync, req, oid) :: rest as remaining ->
          let run () = Drive.handle target cred ~sync req in
          let resp =
            match (req, oid) with
            | Rpc.Create _, Some g ->
              (* Replay the create idempotently onto the oid the live
                 replica resolved at execution time: the target's own
                 allocator (drive-local counter or a shard router's
                 array-wide one) must not mint a fresh id. *)
              let st = Drive.store target in
              let saved = Store.oid_allocator st in
              Store.set_oid_allocator st (Some (fun () -> g));
              Fun.protect ~finally:(fun () -> Store.set_oid_allocator st saved) run
            | _ -> run ()
          in
          (match resp with
           | Rpc.R_error e ->
             (* Keep only what was NOT replayed (including the failed
                request): the applied prefix must not be replayed again
                on the next resync — ops like Append are not
                idempotent, so double-applying them diverges the
                replicas the resync is meant to converge. *)
             t.missed <- List.rev remaining;
             refresh_missed_index t;
             Error (Format.asprintf "mirror resync: %s failed: %a" (Rpc.op_name req) Rpc.pp_error e)
           | _ -> go (n + 1) rest)
      in
      go 0 replay

let divergence t =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
  let s1 = Drive.store t.primary and s2 = Drive.store t.secondary in
  let o1 = Store.list_all s1 and o2 = Store.list_all s2 in
  if o1 <> o2 then err "object sets differ: %d vs %d" (List.length o1) (List.length o2)
  else
    List.iter
      (fun oid ->
        let e1 = Store.exists s1 oid and e2 = Store.exists s2 oid in
        if e1 <> e2 then err "oid %Ld existence differs" oid
        else if e1 then begin
          let z1 = Store.size s1 oid and z2 = Store.size s2 oid in
          if z1 <> z2 then err "oid %Ld size %d vs %d" oid z1 z2
          else begin
            let d1 = Digest.bytes (Store.read s1 oid ~off:0 ~len:z1) in
            let d2 = Digest.bytes (Store.read s2 oid ~off:0 ~len:z2) in
            if d1 <> d2 then err "oid %Ld contents differ" oid
          end;
          if not (Bytes.equal (Store.get_attr s1 oid) (Store.get_attr s2 oid)) then
            err "oid %Ld attrs differ" oid
        end)
      o1;
  List.rev !errs
