examples/mirrored_drives.mli:
