lib/multi/mirror.ml: Bytes Digest Format List S4 S4_disk S4_seglog S4_store
