module Log = S4_seglog.Log
module Simclock = S4_util.Simclock
module Delta = S4_compress.Delta
module Lz = S4_compress.Lz

type report = {
  expired_entries : int;
  expired_blocks : int;
  expired_objects : int;
  segments_reclaimed : int;
  segments_compacted : int;
  blocks_moved : int;
  free_segments_before : int;
  free_segments_after : int;
}

let empty_report =
  {
    expired_entries = 0;
    expired_blocks = 0;
    expired_objects = 0;
    segments_reclaimed = 0;
    segments_compacted = 0;
    blocks_moved = 0;
    free_segments_before = 0;
    free_segments_after = 0;
  }

type mode =
  | Charged
  | Free
  | Overlapped

type t = {
  store : Obj_store.t;
  mutable window : int64;
  live_threshold : float;
  max_segments_per_run : int;
  mutable mode : mode;
  mutable on_audit_move : Obj_store.addr -> Obj_store.addr -> unit;
  mutable totals : report;
}

let day_ns = Int64.mul 86_400L 1_000_000_000L

let create ?(window = Int64.mul 7L day_ns) ?(live_threshold = 0.75)
    ?(max_segments_per_run = 8) store =
  {
    store;
    window;
    live_threshold;
    max_segments_per_run;
    mode = Charged;
    on_audit_move = (fun _ _ -> ());
    totals = empty_report;
  }

let window t = t.window
let set_window t w = if Int64.compare w 0L < 0 then invalid_arg "Cleaner.set_window" else t.window <- w
let set_mode t m = t.mode <- m
let mode t = t.mode
let set_charged t v = t.mode <- (if v then Charged else Free)
let set_on_audit_move t f = t.on_audit_move <- f

let cutoff t =
  let now = Simclock.now (Obj_store.clock t.store) in
  let c = Int64.sub now t.window in
  if Int64.compare c 0L < 0 then 0L else c

let add_totals t r =
  t.totals <-
    {
      expired_entries = t.totals.expired_entries + r.expired_entries;
      expired_blocks = t.totals.expired_blocks + r.expired_blocks;
      expired_objects = t.totals.expired_objects + r.expired_objects;
      segments_reclaimed = t.totals.segments_reclaimed + r.segments_reclaimed;
      segments_compacted = t.totals.segments_compacted + r.segments_compacted;
      blocks_moved = t.totals.blocks_moved + r.blocks_moved;
      free_segments_before = r.free_segments_before;
      free_segments_after = r.free_segments_after;
    }

let totals t = t.totals

(* Closed segments worth compacting, emptiest first. *)
let victims t log =
  Log.segments log
  |> Array.to_list
  |> List.filter_map (fun info ->
         if info.Log.seg_state = Log.Closed && info.Log.seg_written > 0 then begin
           let ratio =
             float_of_int info.Log.seg_live /. float_of_int (Log.blocks_per_segment log - 1)
           in
           if ratio > 0.0 && ratio < t.live_threshold then Some (info.Log.seg_index, ratio)
           else None
         end
         else None)
  |> List.sort (fun (_, a) (_, b) -> compare a b)
  |> List.filteri (fun i _ -> i < t.max_segments_per_run)
  |> List.map fst

let run ?(idle_ns = 0L) t =
  let log = Obj_store.log t.store in
  let disk = S4_disk.Sim_disk.clock (Log.disk log) in
  ignore disk;
  let stats = Obj_store.stats t.store in
  let before_entries = stats.Obj_store.entries_expired in
  let before_blocks = stats.Obj_store.blocks_expired in
  let before_objects = stats.Obj_store.objects_expired in
  let free_segments_before = Log.free_segments log in
  (match t.mode with
   | Charged -> ()
   | Free -> Log.charge_io log false
   | Overlapped ->
     S4_disk.Sim_disk.reset_phantom (Log.disk log);
     S4_disk.Sim_disk.set_phantom (Log.disk log) true);
  Fun.protect
    ~finally:(fun () ->
      match t.mode with
      | Charged -> ()
      | Free -> Log.charge_io log true
      | Overlapped ->
        let d = Log.disk log in
        S4_disk.Sim_disk.set_phantom d false;
        let cost = S4_disk.Sim_disk.phantom_ns d in
        S4_disk.Sim_disk.reset_phantom d;
        (* The background cleaner absorbs foreground idle disk time;
           only the excess delays the foreground. *)
        let excess = Int64.sub cost idle_ns in
        if Int64.compare excess 0L > 0 then
          S4_util.Simclock.advance (Log.clock log) excess)
    (fun () ->
      Obj_store.expire t.store ~cutoff:(cutoff t);
      let reclaimed = Log.reclaim_dead_segments log in
      let compacted = ref 0 in
      let moved = ref 0 in
      List.iter
        (fun seg ->
          (* Compaction consumes log head space; keep a reserve so the
             cleaner cannot wedge the log itself. *)
          if Log.free_segments log > 2 then begin
            match Obj_store.compact_segment t.store ~seg ~on_audit_move:t.on_audit_move () with
            | Ok n ->
              incr compacted;
              moved := !moved + n
            | Error _ -> ()
          end;
          ignore (Log.reclaim_dead_segments log))
        (victims t log);
      Obj_store.sync t.store;
      let reclaimed = reclaimed + Log.reclaim_dead_segments log in
      let r =
        {
          expired_entries = stats.Obj_store.entries_expired - before_entries;
          expired_blocks = stats.Obj_store.blocks_expired - before_blocks;
          expired_objects = stats.Obj_store.objects_expired - before_objects;
          segments_reclaimed = reclaimed;
          segments_compacted = !compacted;
          blocks_moved = !moved;
          free_segments_before;
          free_segments_after = Log.free_segments log;
        }
      in
      add_totals t r;
      r)

let run_if_needed t ~min_free_segments =
  let log = Obj_store.log t.store in
  if Log.free_segments log < min_free_segments then Some (run t) else None

type differencing = {
  history_blocks : int;
  history_bytes : int;
  delta_bytes : int;
  delta_compressed_bytes : int;
}

let measure_differencing t =
  let store = t.store in
  let log = Obj_store.log store in
  let block_size = Log.block_size log in
  let history_blocks = ref 0 in
  let delta_bytes = ref 0 in
  let delta_compressed_bytes = ref 0 in
  let consider_pair ~old_addr ~succ_addr =
    if old_addr <> Log.none && Log.is_live log old_addr then begin
      incr history_blocks;
      let target = Log.peek log old_addr in
      let source =
        if succ_addr <> Log.none then Log.peek log succ_addr else Bytes.empty
      in
      let d = Delta.encode ~source ~target in
      delta_bytes := !delta_bytes + Bytes.length d;
      delta_compressed_bytes := !delta_compressed_bytes + Bytes.length (Lz.compress d)
    end
  in
  let scan_entry (e : Entry.t) =
    match e.Entry.op with
    | Entry.Write { blocks; _ } ->
      List.iter (fun (_, succ, old) -> consider_pair ~old_addr:old ~succ_addr:succ) blocks
    | Entry.Truncate { freed; _ } ->
      List.iter (fun (_, old) -> consider_pair ~old_addr:old ~succ_addr:Log.none) freed
    | Entry.Create | Entry.Set_attr _ | Entry.Set_acl _ | Entry.Delete _
    | Entry.Checkpoint _ | Entry.Relocate _ ->
      ()
  in
  List.iter
    (fun oid -> List.iter scan_entry (Obj_store.journal store oid))
    (Obj_store.list_all store);
  {
    history_blocks = !history_blocks;
    history_bytes = !history_blocks * block_size;
    delta_bytes = !delta_bytes;
    delta_compressed_bytes = !delta_compressed_bytes;
  }
