lib/workload/postmark.ml: Array Bytes Format Printf S4_nfs S4_util Systems
