(** Intrusion diagnosis from the audit log (Section 3.6).

    Given the audit records for the compromise window, these tools
    answer the administrator's questions: which objects did the
    suspicious client or account touch, what was the order of events,
    and where might tainted data have propagated (an object read
    shortly before another was written is a candidate dependency, e.g.
    a trojaned source file and the object file compiled from it).

    Every function takes a {!Target.t}, so diagnosis runs identically
    over a single drive and a sharded array (records merged across
    shards in time order). *)

type activity = {
  a_oid : int64;
  a_reads : int;
  a_writes : int;  (** writes, appends, truncates *)
  a_deleted : bool;
  a_created : bool;
  a_acl_changed : bool;
  a_denied : int;
      (** rejected requests against this object — an attacker's failed
          probes (ACL-denied deletes, rejected admin calls) are
          evidence, not noise *)
  a_first : int64;
  a_last : int64;
}

val damage_report :
  ?user:int -> ?client:int -> since:int64 -> until:int64 -> Target.t -> activity list
(** Per-object summary of what the given principal did in the window,
    most recently touched first. Omitting both [user] and [client]
    reports everyone's activity. Denied requests are counted in
    [a_denied] (they changed nothing, but they place the principal at
    the object). *)

type taint_edge = {
  src : int64;  (** object read *)
  dst : int64;  (** object written shortly after by the same principal *)
  gap_ns : int64;
}

val taint_edges :
  ?user:int -> ?client:int -> ?horizon_ns:int64 ->
  since:int64 -> until:int64 -> Target.t -> taint_edge list
(** Read-before-write dependency candidates within [horizon_ns]
    (default 5 simulated seconds), deduplicated; an imperfect but
    useful propagation estimate, as the paper notes. *)

val timeline : oid:int64 -> since:int64 -> until:int64 -> Target.t -> S4.Audit.record list
(** Every audited request touching one object, in order. *)

val suspicious_denials : since:int64 -> until:int64 -> Target.t -> S4.Audit.record list
(** Rejected requests (permission probes) in the window. *)

val pp_activity : Format.formatter -> activity -> unit
val pp_taint_edge : Format.formatter -> taint_edge -> unit
