lib/nfs/nfs_types.mli: Bytes Format
