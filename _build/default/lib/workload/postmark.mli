(** The PostMark benchmark (Katcher, 1997), as configured in the
    paper: many small files (512 B - 9.3 KB), a creation phase, then
    transactions where each transaction pairs one create-or-delete with
    one read-or-append, equal biases. The paper's default is 20 000
    transactions over 5 000 files; Figure 5 uses 50 000 transactions
    over varying initial sets. *)

type config = {
  files : int;
  transactions : int;
  subdirectories : int;
  min_size : int;
  max_size : int;
  seed : int;
  cleaner_every : int option;
      (** run the S4 cleaner after every N transactions (foreground
          cleaning, Fig. 5); [None] = never *)
}

val default : config
(** The paper's configuration: 5 000 files, 20 000 transactions. *)

type result = {
  system : string;
  creation_seconds : float;
  transaction_seconds : float;
  files_created : int;
  files_deleted : int;
  files_read : int;
  files_appended : int;
  bytes_read : int;
  bytes_written : int;
  transactions_per_second : float;
}

val run : ?config:config -> Systems.t -> result
(** Runs both phases on the given system. Deterministic for a fixed
    seed. *)

val pp_result : Format.formatter -> result -> unit
