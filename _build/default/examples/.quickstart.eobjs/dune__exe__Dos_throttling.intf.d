examples/dos_throttling.mli:
