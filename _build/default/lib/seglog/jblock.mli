(** Journal block codec.

    Journal entries describe metadata mutations compactly (the paper's
    "journal-based metadata"). The segment log treats entry payloads as
    opaque — the object store defines their meaning — but fixes the
    framing: a journal block packs entries for the changes made since
    the previous sync, carries a backward pointer to the previous
    journal block (the paper's backward-in-time chaining), and is
    self-identifying (magic + CRC) so crash recovery can find journal
    blocks even in a segment whose summary was never written. *)

type entry = {
  oid : int64;  (** object the change applies to *)
  seq : int;  (** per-object version sequence number *)
  time : int64;  (** simulated time of the change, ns *)
  kind : int;  (** store-defined operation code *)
  payload : Bytes.t;  (** store-defined operation arguments *)
}

val entry_size : entry -> int
(** Encoded size of one entry, bytes. *)

val header_size : int
(** Fixed per-block overhead (magic, prev pointer, count, CRC). *)

val encode : block_size:int -> prev:int -> entry list -> Bytes.t
(** Block-sized buffer (zero padded). Raises [Invalid_argument] if the
    entries do not fit. *)

val decode : Bytes.t -> (int * entry list) option
(** [decode b] is [Some (prev, entries)] if [b] is a well-formed
    journal block (magic and CRC check out), [None] otherwise. *)

val fits : block_size:int -> current:int -> entry -> bool
(** Whether an entry of the given size still fits in a block already
    holding [current] bytes of entries. *)
