lib/core/drive.ml: Acl Audit Bytes Format Int64 List Option Rpc S4_disk S4_seglog S4_store S4_util String Throttle
