(** Comprehensive-versioning object store (S4 drive internals).

    Every mutation — every write, truncate, attribute or ACL change,
    and delete — creates a new version: data blocks are appended to the
    segment log (never overwritten), and the metadata change is
    recorded as a compact journal entry carrying both the new and the
    superseded block pointers. Old versions remain readable with
    [?at:time] until they age out of the history pool (see
    {!Cleaner}).

    The store models the paper's S4 drive caches: a block (buffer)
    cache with segment read-ahead and an object (metadata) cache whose
    evictions checkpoint dirty metadata to the log.

    Data contents are retained only when [keep_data] is set (the
    default); with it off the store tracks layout and timing only,
    allowing multi-gigabyte experiments in bounded memory. *)

type t
type oid = int64
type addr = int

exception No_such_object of oid
(** Raised when an object does not exist (at the requested time). *)

exception Is_deleted of oid
(** Raised by mutations on a deleted object. *)

type config = {
  keep_data : bool;
  block_cache_bytes : int;  (** paper setup: 128 MiB *)
  object_cache_bytes : int;  (** paper setup: 32 MiB *)
  readahead_blocks : int;  (** blocks fetched per cache miss *)
  checkpoint_interval : int;  (** journal entries between checkpoints *)
}

val default_config : config

type stats = {
  mutable ops : int;
  mutable journal_entries : int;
  mutable journal_bytes : int;
  mutable journal_blocks_written : int;
  mutable checkpoint_blocks_written : int;
  mutable data_blocks_written : int;
  mutable bytes_written : int;
  mutable bytes_read : int;
  mutable entries_expired : int;
  mutable blocks_expired : int;
  mutable objects_expired : int;
}

val create : ?config:config -> S4_seglog.Log.t -> t
val log : t -> S4_seglog.Log.t
val clock : t -> S4_util.Simclock.t
val config : t -> config
val stats : t -> stats

(** {1 Object operations}

    All mutations bump the object's version sequence number and are
    durable after the next {!sync}. *)

val create_object : t -> oid

val set_oid_allocator : t -> (unit -> oid) option -> unit
(** Delegate oid assignment to an external authority (the shard
    router's global oid space). The allocator must return oids unique
    across the whole array; {!create_object} keeps the local counter
    ahead of whatever it hands out. *)

val oid_allocator : t -> (unit -> oid) option
(** The allocator currently installed (for save/restore around a
    replay that must reuse a previously assigned oid). *)

val next_oid : t -> oid
(** The next oid the local counter would assign (strictly greater than
    every oid this store has seen). *)

val delete_object : t -> oid -> unit
(** The object stays readable time-based; further mutation raises
    {!Is_deleted}. *)

val exists : t -> ?at:int64 -> oid -> bool
val size : t -> ?at:int64 -> oid -> int
val seq : t -> oid -> int
val created_time : t -> oid -> int64

val write : t -> oid -> off:int -> ?data:Bytes.t -> len:int -> unit -> unit
(** [data], when given, must be [len] bytes; required if the store
    keeps contents. Extends the object as needed. *)

val append : t -> oid -> ?data:Bytes.t -> len:int -> unit -> unit
val truncate : t -> oid -> size:int -> unit

val read : t -> ?at:int64 -> oid -> off:int -> len:int -> Bytes.t
(** Clamped at the object's size (short reads at EOF). Holes and
    content-free blocks read as zeros. [?at] reads the version that was
    current at that time.
    @raise No_such_object if the object doesn't exist at that time. *)

val get_attr : t -> ?at:int64 -> oid -> Bytes.t
val set_attr : t -> oid -> Bytes.t -> unit
val get_acl_raw : t -> ?at:int64 -> oid -> Bytes.t
val set_acl_raw : t -> oid -> Bytes.t -> unit

val current_acl_raw : t -> oid -> Bytes.t
(** Latest ACL bytes even if the object is deleted — deleted objects
    keep their ACL for history access-control decisions.
    Raises [No_such_object] for unknown oids. *)

val sync : t -> unit
(** Flush pending journal entries into journal blocks and force all
    buffered log blocks to disk (NFSv2-style stability). *)

val list_objects : t -> oid list
(** Existing (non-deleted) objects. *)

val list_all : t -> oid list
(** Including deleted-but-still-in-window objects. *)

(** {1 History} *)

val journal : t -> oid -> Entry.t list
(** Retained journal entries, newest first.
    @raise No_such_object for unknown oids. *)

val versions : t -> oid -> Entry.t list
(** Like {!journal} but without [Checkpoint] entries: one element per
    user-visible version transition. *)

val oldest_time : t -> oid -> int64 option
(** Time of the oldest retained entry. *)

val expire : t -> cutoff:int64 -> unit
(** Roll off journal entries strictly older than [cutoff]: kill the
    blocks they superseded, release empty journal blocks, and forget
    objects whose delete has aged out. Called by the cleaner; the
    cutoff is [now - detection_window]. *)

val expire_one : t -> oid -> cutoff:int64 -> unit
(** {!expire} for a single object (administrative FlushO).
    @raise No_such_object for unknown oids. *)

val history_block_count : t -> int
(** Live blocks that belong to the history pool only (not reachable
    from any current object state, not journal/checkpoint blocks). *)

val current_block_count : t -> int
val metadata_block_count : t -> int

(** {1 History migration (shard rebalancing)}

    Device-independent capture and replay of an object's entire
    retained version chain. [import_history] on another store replays
    the history block-for-block with the original sequence numbers and
    timestamps, so every in-window version answers identically on the
    new home — the detection-window guarantee survives migration. *)

type xop =
  | X_create
  | X_write of {
      off : int;
      len : int;
      old_size : int;
      new_size : int;
      blocks : (int * Bytes.t option) list;
          (** (fblock, full post-write content); content is [None] in
              timing-only mode *)
    }
  | X_truncate of { old_size : int; new_size : int }
  | X_set_attr of { old_attr : Bytes.t; new_attr : Bytes.t }
  | X_set_acl of { old_acl : Bytes.t; new_acl : Bytes.t }
  | X_delete of { old_size : int }

type xentry = { x_seq : int; x_time : int64; x_op : xop }

type xbase = {
  xb_seq : int;
  xb_size : int;
  xb_attr : Bytes.t;
  xb_acl : Bytes.t;
  xb_blocks : (int * Bytes.t option) list;
}
(** Rolled-back state just before the oldest retained entry; present
    only when the object's Create entry has already aged out. *)

type export = {
  x_oid : oid;
  x_created : int64;
  x_base : xbase option;
  x_entries : xentry list;  (** oldest first; no Checkpoint/Relocate *)
}

val export_history : t -> oid -> export
(** Capture the object's full retained history, charging real reads
    for every block streamed off the source.
    @raise No_such_object for unknown oids. *)

val import_history : t -> export -> unit
(** Replay an exported history onto this store. The object must not
    already exist here. When the export carries a base state, a
    checkpoint image is written immediately (no journal entry covers
    the base); the caller must {!sync} afterwards to make the whole
    import durable. *)

val forget_object : t -> oid -> unit
(** Drop every trace of the object from this store — entries, data and
    history blocks, checkpoints, pending journal records — reclaiming
    the space. Used by the migrator after a verified cut-over; this is
    an owner-side administrative purge, not a client-reachable op.
    @raise No_such_object for unknown oids. *)

(** {1 Checkpoints and recovery} *)

val checkpoint_object : t -> oid -> unit
(** Force a metadata checkpoint (normally automatic). *)

val recover : ?config:config -> S4_seglog.Log.t -> t
(** Rebuild a store from a re-attached log (see
    {!S4_seglog.Log.reattach}): replays every decodable journal block,
    loads the newest checkpoint image per object, re-applies newer
    entries forward, and re-marks live blocks. Pending (unsynced)
    state from before the crash is lost, as it should be. *)

val check : ?extra_live:addr list -> t -> string list
(** Invariant violations (empty = healthy): current table blocks live
    and correctly tagged, retained history blocks live, journal
    refcounts consistent, live-block accounting matches. *)

val drop_caches : t -> unit
(** Empty the block and object caches (cold-cache experiment phases);
    no dirty state is lost — metadata lives in [objects], and dirty
    journal entries are in [pending]. *)

val cache_stats : t -> int * int
(** Block-cache (hits, misses). *)

val pp_stats : Format.formatter -> t -> unit

(** {1 Cleaner mechanism} *)

val compact_segment :
  t -> seg:int -> ?on_audit_move:(addr -> addr -> unit) -> unit -> (int, string) result
(** Move every live block out of a closed segment so it can be
    reclaimed: data blocks are re-appended and all in-memory references
    rewritten (a [Relocate] journal entry records the moves for
    recovery), journal blocks are re-homed, checkpoints are rewritten
    fresh, and audit blocks are reported through [on_audit_move] so
    their owner can update its index. Returns the number of blocks
    moved; [Error _] if the segment is not closed. The caller should
    {!sync} afterwards. *)
