lib/seglog/summary.ml: Array Bytes Int32 S4_util Tag
