module Bcodec = S4_util.Bcodec
module Crc32 = S4_util.Crc32
module Simclock = S4_util.Simclock
module Log = S4_seglog.Log
module Tag = S4_seglog.Tag

type record = {
  at : int64;
  user : int;
  client : int;
  op : string;
  oid : int64;
  info : string;
  ok : bool;
}

let magic = 0x5541 (* "AU" *)

type t = {
  log : Log.t;
  mutable enabled : bool;
  mutable buffer : record list;  (* newest first *)
  mutable buffer_bytes : int;
  mutable blocks : (int * int64) list;  (* (addr, newest record time), newest first *)
  mutable nrecords : int;
}

let create ?(enabled = true) log =
  { log; enabled; buffer = []; buffer_bytes = 0; blocks = []; nrecords = 0 }

let enabled t = t.enabled
let set_enabled t v = t.enabled <- v

(* Compact wire encoding, so an audit block holds hundreds of records
   (the paper reports roughly one audit write per 750 operations):
   - op names from the fixed RPC vocabulary become a single byte;
   - times are varint deltas against the first record of the block;
   - the argument summary is stored as a short string (it is already
     terse, e.g. "oid=5 off=0 len=64"). *)

let op_codes =
  [|
    "create"; "delete"; "read"; "write"; "append"; "truncate"; "getattr"; "setattr";
    "getacl_user"; "getacl_index"; "setacl"; "pcreate"; "pdelete"; "plist"; "pmount";
    "sync"; "flush"; "flusho"; "setwindow"; "readaudit";
  |]

let code_of_op op =
  let rec find i = if i >= Array.length op_codes then None else if op_codes.(i) = op then Some i else find (i + 1) in
  find 0

let w_record w ~base r =
  (match code_of_op r.op with
   | Some c -> Bcodec.w_u8 w ((c lsl 1) lor if r.ok then 1 else 0)
   | None ->
     Bcodec.w_u8 w ((0xFF lsl 1) land 0xFF lor if r.ok then 1 else 0);
     Bcodec.w_string w r.op);
  Bcodec.w_int w (Int64.to_int (Int64.sub r.at base));
  Bcodec.w_int w (r.user + 1);
  Bcodec.w_int w (r.client + 1);
  Bcodec.w_int w (Int64.to_int r.oid);
  Bcodec.w_string w r.info

let r_record rd ~base =
  let tagbyte = Bcodec.r_u8 rd in
  let ok = tagbyte land 1 = 1 in
  let code = tagbyte lsr 1 in
  let op = if code < Array.length op_codes then op_codes.(code) else Bcodec.r_string rd in
  let at = Int64.add base (Int64.of_int (Bcodec.r_int rd)) in
  let user = Bcodec.r_int rd - 1 in
  let client = Bcodec.r_int rd - 1 in
  let oid = Int64.of_int (Bcodec.r_int rd) in
  let info = Bcodec.r_string rd in
  { at; user; client; op; oid; info; ok }

let record_wire_bytes r =
  let w = Bcodec.writer () in
  w_record w ~base:r.at r;
  (* Slack for the varint time delta against the block base (up to 9
     bytes for multi-hour gaps) and unknown-op strings. *)
  Bcodec.length w + 10

(* Block layout: magic, base time, count, records..., zero pad, crc in
   the last 4 bytes — self-identifying like journal blocks. *)
let encode_block block_size records_chrono =
  let base = match records_chrono with r :: _ -> r.at | [] -> 0L in
  let w = Bcodec.writer ~capacity:block_size () in
  Bcodec.w_u16 w magic;
  Bcodec.w_i64 w base;
  Bcodec.w_int w (List.length records_chrono);
  List.iter (fun r -> w_record w ~base r) records_chrono;
  let body = Bcodec.contents w in
  if Bytes.length body + 4 > block_size then invalid_arg "Audit: block overflow";
  let out = Bytes.make block_size '\000' in
  Bytes.blit body 0 out 0 (Bytes.length body);
  let crc = Crc32.sub out ~pos:0 ~len:(block_size - 4) in
  Bcodec.set_u32 out (block_size - 4) (Int32.to_int crc land 0xFFFFFFFF);
  out

let decode_block b =
  let n = Bytes.length b in
  if n < 18 then None
  else if Bcodec.get_u16 b 0 <> magic then None
  else begin
    let stored = Bcodec.get_u32 b (n - 4) in
    let crc = Int32.to_int (Crc32.sub b ~pos:0 ~len:(n - 4)) land 0xFFFFFFFF in
    if stored <> crc then None
    else begin
      try
        let rd = Bcodec.reader ~pos:2 b in
        let base = Bcodec.r_i64 rd in
        let count = Bcodec.r_int rd in
        Some (List.init count (fun _ -> r_record rd ~base))
      with Bcodec.Decode_error _ -> None
    end
  end

let flush_block t =
  match t.buffer with
  | [] -> ()
  | newest_first ->
    let block_size = Log.block_size t.log in
    let chrono = List.rev newest_first in
    t.buffer <- [];
    t.buffer_bytes <- 0;
    (* Pack greedily by actual encoded size (time deltas vary). *)
    let emit group_rev =
      match group_rev with
      | [] -> ()
      | newest :: _ as group_rev ->
        let data = encode_block block_size (List.rev group_rev) in
        let addr = Log.append t.log Tag.Audit ~data () in
        t.blocks <- (addr, newest.at) :: t.blocks
    in
    let base = ref (match chrono with r :: _ -> r.at | [] -> 0L) in
    let group = ref [] in
    let used = ref 0 in
    List.iter
      (fun r ->
        let w = Bcodec.writer () in
        w_record w ~base:!base r;
        let sz = Bcodec.length w in
        if !used + sz + 17 > block_size && !group <> [] then begin
          emit !group;
          group := [];
          used := 0;
          base := r.at
        end;
        group := r :: !group;
        used := !used + sz)
      chrono;
    emit !group

let append t r =
  if t.enabled then begin
    let sz = record_wire_bytes r in
    (* header (2) + base (8) + count varint (3) + crc (4) *)
    if t.buffer_bytes + sz + 17 > Log.block_size t.log then flush_block t;
    t.buffer <- r :: t.buffer;
    t.buffer_bytes <- t.buffer_bytes + sz;
    t.nrecords <- t.nrecords + 1
  end

let flush t = flush_block t
let block_count t = List.length t.blocks
let block_addrs t = List.map fst t.blocks
let record_count t = t.nrecords

let records t ?(since = 0L) ?(until = Int64.max_int) () =
  let in_range r = Int64.compare r.at since >= 0 && Int64.compare r.at until <= 0 in
  let from_blocks =
    List.concat_map
      (fun (addr, _) ->
        match decode_block (Log.read t.log addr) with
        | Some rs -> List.filter in_range rs
        | None -> [])
      (List.rev t.blocks)
  in
  from_blocks @ List.filter in_range (List.rev t.buffer)

let expire t ~cutoff =
  let expired, kept =
    List.partition (fun (_, newest) -> Int64.compare newest cutoff < 0) t.blocks
  in
  List.iter (fun (addr, _) -> Log.kill t.log addr) expired;
  t.blocks <- kept;
  List.length expired

let on_move t ~old_addr ~new_addr =
  t.blocks <-
    List.map (fun (a, newest) -> if a = old_addr then (new_addr, newest) else (a, newest)) t.blocks

let recover t =
  let found =
    List.filter_map
      (fun (addr, tag) ->
        match tag with
        | Tag.Audit | Tag.Unknown ->
          (match decode_block (Log.peek t.log addr) with
           | Some [] -> None
           | Some rs ->
             let newest = List.fold_left (fun acc r -> max acc r.at) 0L rs in
             Log.mark_live t.log addr Tag.Audit;
             t.nrecords <- t.nrecords + List.length rs;
             Some (addr, newest)
           | None -> None)
        | _ -> None)
      (Log.all_tagged t.log)
  in
  t.blocks <- List.sort (fun (_, a) (_, b) -> compare b a) found;
  (* Same monotonicity guard as Obj_store.recover: recovered audit
     records may postdate the barrier clock a file-backed restart
     resumed from. *)
  let tmax = List.fold_left (fun acc (_, newest) -> max acc newest) Int64.min_int found in
  let clock = Log.clock t.log in
  if Int64.compare tmax (Simclock.now clock) >= 0 then
    Simclock.set clock (Int64.add tmax 1L)
