type concurrency = Serial | Domain_safe

type t = {
  clock : S4_util.Simclock.t;
  keep_data : bool;
  capacity : unit -> int * int;
  concurrency : concurrency;
  submit : Rpc.credential -> ?sync:bool -> Rpc.req array -> Rpc.resp array;
  close : unit -> unit;
}

let handle t cred ?(sync = false) req = (t.submit cred ~sync [| req |]).(0)

let make ~clock ~keep_data ~capacity ?(concurrency = Serial)
    ?(close = fun () -> ()) submit =
  { clock; keep_data; capacity; concurrency; submit; close }

let of_handle ~clock ~keep_data ~capacity ?(close = fun () -> ())
    (h : Rpc.credential -> ?sync:bool -> Rpc.req -> Rpc.resp) =
  (* Group commit over a single-request handler: the barrier rides on
     the last request of the batch, everything before it is unsynced.
     A legacy handler can only barrier through a request, so the empty
     batch falls back to an explicit (audited) Sync RPC. *)
  let submit cred ?(sync = false) reqs =
    let n = Array.length reqs in
    if n = 0 then begin
      if sync then ignore (h cred ~sync:true Rpc.Sync);
      [||]
    end
    else
      Array.mapi
        (fun i req -> h cred ~sync:(sync && i = n - 1) req)
        reqs
  in
  { clock; keep_data; capacity; concurrency = Serial; submit; close }
