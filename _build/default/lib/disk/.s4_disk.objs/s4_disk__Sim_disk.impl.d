lib/disk/sim_disk.ml: Bytes Format Geometry Hashtbl Int64 Printf S4_util
