lib/tools/landmark.mli: Bytes S4
