(** Process-wide metrics registry: named monotonic counters and named
    latency histograms.

    The registry is deliberately global — it aggregates across every
    layer of a simulated system (NFS translator, shard router, drive,
    store, segment log, disk) without threading a handle through six
    APIs. It is populated automatically by {!Trace} when tracing is
    enabled, and may be fed directly by any caller.

    Everything here is observationally free: the registry never reads
    or advances a {!S4_util.Simclock}, so recording a metric cannot
    perturb a simulation.

    The registry is domain-safe: counters are atomic cells (concurrent
    {!incr}s from server threads or shard worker domains cannot lose
    updates) and the tables are mutex-guarded. Only {!reset} requires
    quiescence — call it between runs, not while another domain is
    recording. *)

val incr : ?by:int -> string -> unit
(** Bump the named counter, creating it at zero on first use. *)

val set : string -> int -> unit
(** Overwrite the named counter (gauge semantics), creating it on
    first use — for values that are a snapshot of live state rather
    than an accumulation, e.g. the throttle's decaying per-client
    counters. *)

val observe : string -> float -> unit
(** Add a sample to the named histogram, creating it on first use. *)

val counter : string -> int
(** Current value of the named counter (0 if never bumped). *)

val histogram : string -> S4_util.Histogram.t option
(** The named histogram, if any samples were recorded. *)

val counters : unit -> (string * int) list
(** All counters, sorted by name. *)

val histograms : unit -> (string * S4_util.Histogram.t) list
(** All histograms, sorted by name. *)

val reset : unit -> unit
(** Drop every counter and histogram. Not safe concurrently with
    recording — quiesce first. *)

val pp : Format.formatter -> unit -> unit
(** Render the whole registry, counters then histogram summaries. *)
