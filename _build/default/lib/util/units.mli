(** Size parsing/printing and small numeric helpers shared by the
    reports and benchmark harness. *)

val kib : int
val mib : int
val gib : int

val pp_bytes : Format.formatter -> int -> unit
(** "4.0 KiB", "1.2 GiB", ... *)

val pp_rate : Format.formatter -> float -> unit
(** Bytes-per-second rate, e.g. "12.3 MiB/s". *)

val percent : float -> float -> float
(** [percent part whole] in 0..100; 0 when [whole] = 0. *)

val round_to : int -> float -> float
(** [round_to digits x] rounds to that many decimal digits. *)

val mean : float list -> float
val stddev : float list -> float
