test/test_analysis.ml: Alcotest Float List Printf S4_analysis S4_workload
