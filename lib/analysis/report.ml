let heading title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let widths rows =
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 rows in
  let w = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> if String.length cell > w.(i) then w.(i) <- String.length cell))
    rows;
  w

let print_row w cells =
  List.iteri (fun i cell -> Printf.printf "%-*s  " w.(i) cell) cells;
  print_newline ()

let table ~header rows =
  let all = header :: rows in
  let w = widths all in
  print_row w header;
  print_row w (List.map (fun n -> String.make n '-') (Array.to_list (Array.sub w 0 (List.length header))));
  List.iter (print_row w) rows

let bars ?(width = 50) items =
  let vmax = List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 items in
  let lmax = List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 items in
  List.iter
    (fun (label, v) ->
      let n = if vmax <= 0.0 then 0 else int_of_float (v /. vmax *. float_of_int width) in
      Printf.printf "%-*s  %s %.2f\n" lmax label (String.make n '#') v)
    items

let series ?(width = 40) ~x_label ~y_label points =
  Printf.printf "%-12s %-12s\n" x_label y_label;
  let vmax = List.fold_left (fun acc (_, y) -> Float.max acc y) 0.0 points in
  List.iter
    (fun (x, y) ->
      let n = if vmax <= 0.0 then 0 else int_of_float (y /. vmax *. float_of_int width) in
      Printf.printf "%-12.3g %-12.3g %s\n" x y (String.make n '#'))
    points

let kv pairs =
  let lmax = List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 pairs in
  List.iter (fun (k, v) -> Printf.printf "%-*s : %s\n" lmax k v) pairs

let note s = Printf.printf "  (%s)\n" s

(* Machine-readable results: experiments record flat rows of named
   numbers; the harness dumps them as JSON on demand. *)

let recorded : (string * (string option * (string * float) list)) list ref = ref []

let record ~experiment ?label row = recorded := (experiment, (label, row)) :: !recorded
let reset () = recorded := []

let json_float v =
  if not (Float.is_finite v) then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json ?experiments path =
  let rows = List.rev !recorded in
  let rows =
    match experiments with
    | None -> rows
    | Some names -> List.filter (fun (e, _) -> List.mem e names) rows
  in
  let order =
    List.rev (List.fold_left (fun acc (e, _) -> if List.mem e acc then acc else e :: acc) [] rows)
  in
  let oc = open_out path in
  output_string oc "{";
  List.iteri
    (fun i e ->
      if i > 0 then output_string oc ",";
      Printf.fprintf oc "\n  \"%s\": [" (json_escape e);
      let mine = List.filter (fun (e', _) -> e' = e) rows in
      List.iteri
        (fun j (_, (label, row)) ->
          if j > 0 then output_string oc ",";
          output_string oc "\n    {";
          (match label with
          | Some l -> Printf.fprintf oc "\"label\": \"%s\"%s" (json_escape l) (if row = [] then "" else ", ")
          | None -> ());
          List.iteri
            (fun k (key, v) ->
              if k > 0 then output_string oc ", ";
              Printf.fprintf oc "\"%s\": %s" (json_escape key) (json_float v))
            row;
          output_string oc "}")
        mine;
      output_string oc "\n  ]")
    order;
  output_string oc "\n}\n";
  close_out oc
