examples/quickstart.mli:
