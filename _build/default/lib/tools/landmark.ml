module Bcodec = S4_util.Bcodec
module Rpc = S4.Rpc
module Drive = S4.Drive

type t = { drive : Drive.t; cred : Rpc.credential; index_oid : int64 }

type landmark = {
  l_name : string;
  l_source : int64;
  l_taken_at : int64;
  l_object : int64;
  l_bytes : int;
}

let err fmt = Format.kasprintf (fun s -> Error s) fmt

exception Fail of string

let call_exn t req =
  match Drive.handle t.drive t.cred req with
  | Rpc.R_error e -> raise (Fail (Format.asprintf "%s: %a" (Rpc.op_name req) Rpc.pp_error e))
  | resp -> resp

let partition = "landmarks"

let create ?(cred = Rpc.admin_cred) drive =
  let probe = { drive; cred; index_oid = 0L } in
  let index_oid =
    match Drive.handle drive cred (Rpc.P_mount { name = partition; at = None }) with
    | Rpc.R_oid oid -> oid
    | Rpc.R_error Rpc.Not_found ->
      (match call_exn probe (Rpc.Create { acl = [] }) with
       | Rpc.R_oid oid ->
         ignore (call_exn probe (Rpc.P_create { name = partition; oid }));
         oid
       | _ -> raise (Fail "landmark index creation failed"))
    | r -> raise (Fail (Format.asprintf "pmount: %a" Rpc.pp_resp r))
  in
  { drive; cred; index_oid }

(* --- index codec ------------------------------------------------------ *)

let encode_index landmarks =
  let w = Bcodec.writer () in
  Bcodec.w_int w (List.length landmarks);
  List.iter
    (fun l ->
      Bcodec.w_string w l.l_name;
      Bcodec.w_i64 w l.l_source;
      Bcodec.w_i64 w l.l_taken_at;
      Bcodec.w_i64 w l.l_object;
      Bcodec.w_int w l.l_bytes)
    landmarks;
  Bcodec.contents w

let decode_index b =
  if Bytes.length b = 0 then []
  else begin
    let r = Bcodec.reader b in
    let n = Bcodec.r_int r in
    List.init n (fun _ ->
        let l_name = Bcodec.r_string r in
        let l_source = Bcodec.r_i64 r in
        let l_taken_at = Bcodec.r_i64 r in
        let l_object = Bcodec.r_i64 r in
        let l_bytes = Bcodec.r_int r in
        { l_name; l_source; l_taken_at; l_object; l_bytes })
  end

let read_whole t oid =
  match call_exn t (Rpc.Get_attr { oid; at = None }) with
  | Rpc.R_attr _ ->
    let rec read_size guess =
      match call_exn t (Rpc.Read { oid; off = 0; len = guess; at = None }) with
      | Rpc.R_data b when Bytes.length b < guess -> b
      | Rpc.R_data b ->
        if guess >= 1 lsl 26 then b else read_size (guess * 4)
      | _ -> raise (Fail "read")
    in
    read_size 65536
  | _ -> raise (Fail "getattr")

let list t =
  try decode_index (read_whole t t.index_oid) with Fail _ -> []

let write_index t landmarks =
  let data = encode_index landmarks in
  ignore (call_exn t (Rpc.Truncate { oid = t.index_oid; size = 0 }));
  ignore
    (call_exn t (Rpc.Write { oid = t.index_oid; off = 0; len = Bytes.length data; data = Some data }));
  match Drive.handle t.drive t.cred Rpc.Sync with _ -> ()

let find t name = List.find_opt (fun l -> l.l_name = name) (list t)

let take t ~name ~at oid =
  try
    if find t name <> None then err "landmark %S already exists" name
    else begin
      (* Preserve the version's contents and attributes. *)
      let attr =
        match call_exn t (Rpc.Get_attr { oid; at = Some at }) with
        | Rpc.R_attr b -> b
        | _ -> raise (Fail "getattr at")
      in
      let data =
        match call_exn t (Rpc.Read { oid; off = 0; len = 1 lsl 26; at = Some at }) with
        | Rpc.R_data b -> b
        | _ -> raise (Fail "read at")
      in
      let archive =
        match call_exn t (Rpc.Create { acl = [] }) with
        | Rpc.R_oid o -> o
        | _ -> raise (Fail "create")
      in
      if Bytes.length data > 0 then
        ignore
          (call_exn t (Rpc.Write { oid = archive; off = 0; len = Bytes.length data; data = Some data }));
      if Bytes.length attr > 0 then ignore (call_exn t (Rpc.Set_attr { oid = archive; attr }));
      let l =
        { l_name = name; l_source = oid; l_taken_at = at; l_object = archive;
          l_bytes = Bytes.length data }
      in
      write_index t (l :: list t);
      Ok l
    end
  with Fail m -> Error m

let contents t name =
  match find t name with
  | None -> err "no landmark %S" name
  | Some l -> (try Ok (read_whole t l.l_object) with Fail m -> Error m)

let restore_to t name target =
  match contents t name with
  | Error m -> Error m
  | Ok data ->
    (try
       ignore (call_exn t (Rpc.Truncate { oid = target; size = 0 }));
       if Bytes.length data > 0 then
         ignore
           (call_exn t (Rpc.Write { oid = target; off = 0; len = Bytes.length data; data = Some data }));
       ignore (call_exn t Rpc.Sync);
       Ok (Bytes.length data)
     with Fail m -> Error m)
