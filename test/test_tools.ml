(* Tests for the administrator tools: time-enhanced browsing,
   point-in-time recovery, and audit-log diagnosis — including a full
   end-to-end intrusion scenario. *)

module Simclock = S4_util.Simclock
module Geometry = S4_disk.Geometry
module Sim_disk = S4_disk.Sim_disk
module Drive = S4.Drive
module Rpc = S4.Rpc
module N = S4_nfs.Nfs_types
module Translator = S4_nfs.Translator
module History = S4_tools.History
module Recovery = S4_tools.Recovery
module Diagnosis = S4_tools.Diagnosis
module Target = S4_tools.Target

let check = Alcotest.check

let geom mb = Geometry.with_capacity Geometry.cheetah_9gb ~bytes:(mb * 1024 * 1024)

let mk ?(mb = 64) () =
  let clock = Simclock.create () in
  let disk = Sim_disk.create ~geometry:(geom mb) clock in
  let drive = Drive.format disk in
  let tr = Translator.mount (Translator.Local drive) in
  (clock, drive, tr)

let tick clock = Simclock.advance clock 1_000_000L

let write_file tr path s =
  match Translator.write_file tr path (Bytes.of_string s) with
  | Ok fh -> fh
  | Error e -> Alcotest.failf "write %s: %a" path N.pp_error e

let read_file tr path =
  match Translator.read_file tr path with
  | Ok b -> Bytes.to_string b
  | Error e -> Alcotest.failf "read %s: %a" path N.pp_error e

let remove tr path =
  match Translator.lookup_path tr (Filename.dirname path) with
  | Ok (dir, _) ->
    (match Translator.handle tr (N.Remove { dir; name = Filename.basename path }) with
     | N.R_unit -> ()
     | r -> Alcotest.failf "remove %s: %s" path (match r with N.R_error e -> Format.asprintf "%a" N.pp_error e | _ -> "?"))
  | Error e -> Alcotest.failf "lookup dir of %s: %a" path N.pp_error e

(* --- History ------------------------------------------------------------ *)

let test_history_ls_and_cat () =
  let _, drive, tr = mk () in
  ignore (write_file tr "etc/passwd" "root:x:0:0");
  ignore (write_file tr "etc/hosts" "127.0.0.1 localhost");
  let h = History.create drive in
  (match History.resolve h "etc" with
   | Ok dir ->
     (match History.ls h dir with
      | Ok entries ->
        check (Alcotest.list Alcotest.string) "ls" [ "hosts"; "passwd" ]
          (List.sort compare (List.map (fun ((e : N.dirent), _) -> e.N.name) entries))
      | Error m -> Alcotest.fail m)
   | Error m -> Alcotest.fail m);
  match History.cat_path h "etc/passwd" with
  | Ok b -> check Alcotest.string "cat" "root:x:0:0" (Bytes.to_string b)
  | Error m -> Alcotest.fail m

let test_history_time_travel_ls () =
  let clock, drive, tr = mk () in
  ignore (write_file tr "dir/original" "here first");
  let t1 = Simclock.now clock in
  tick clock;
  ignore (write_file tr "dir/newcomer" "here later");
  remove tr "dir/original";
  let h = History.create drive in
  (* Now: only newcomer. *)
  (match History.resolve h "dir" with
   | Ok dir ->
     (match History.ls h dir with
      | Ok entries ->
        check (Alcotest.list Alcotest.string) "now" [ "newcomer" ]
          (List.map (fun ((e : N.dirent), _) -> e.N.name) entries)
      | Error m -> Alcotest.fail m)
   | Error m -> Alcotest.fail m);
  (* Then: only original. *)
  match History.resolve h ~at:t1 "dir" with
  | Ok dir ->
    (match History.ls h ~at:t1 dir with
     | Ok entries ->
       check (Alcotest.list Alcotest.string) "then" [ "original" ]
         (List.map (fun ((e : N.dirent), _) -> e.N.name) entries)
     | Error m -> Alcotest.fail m)
  | Error m -> Alcotest.fail m

let test_history_cat_old_version () =
  let clock, drive, tr = mk () in
  let _ = write_file tr "notes.txt" "version one" in
  let t1 = Simclock.now clock in
  tick clock;
  let _ = write_file tr "notes.txt" "version TWO" in
  let h = History.create drive in
  (match History.cat_path h "notes.txt" with
   | Ok b -> check Alcotest.string "now" "version TWO" (Bytes.to_string b)
   | Error m -> Alcotest.fail m);
  match History.cat_path h ~at:t1 "notes.txt" with
  | Ok b -> check Alcotest.string "then" "version one" (Bytes.to_string b)
  | Error m -> Alcotest.fail m

let test_history_versions () =
  let clock, drive, tr = mk () in
  let fh = write_file tr "v.txt" "a" in
  tick clock;
  ignore (write_file tr "v.txt" "bb");
  tick clock;
  ignore (write_file tr "v.txt" "ccc");
  let h = History.create drive in
  let times = History.version_times h fh in
  check Alcotest.bool "several versions" true (List.length times >= 3);
  check Alcotest.bool "versions list nonempty" true (History.versions_of h fh <> [])

let test_history_non_admin_denied () =
  let clock, drive, tr = mk () in
  ignore (write_file tr "secret" "alice only");
  let t1 = Simclock.now clock in
  tick clock;
  ignore (write_file tr "secret" "updated");
  (* A different, non-admin user without the Recovery flag. *)
  let h = History.create ~cred:(Rpc.user_cred ~user:9 ~client:9) drive in
  match History.cat_path h ~at:t1 "secret" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "stranger read history without the recovery flag"

(* --- Recovery ------------------------------------------------------------ *)

let test_restore_file () =
  let clock, drive, tr = mk () in
  let fh = write_file tr "config" "clean configuration" in
  let before = Simclock.now clock in
  tick clock;
  ignore (write_file tr "config" "TROJANED");
  let rec_ = Recovery.create drive in
  (match Recovery.restore_file rec_ ~at:before fh with
   | Ok bytes -> check Alcotest.int "bytes" 19 bytes
   | Error m -> Alcotest.fail m);
  Translator.invalidate_caches tr;
  check Alcotest.string "restored" "clean configuration" (read_file tr "config")

let test_restore_is_versioned () =
  (* Restoration copies forward: the tampered version remains visible
     in the history pool as evidence. *)
  let clock, drive, tr = mk () in
  let fh = write_file tr "f" "good" in
  let t_good = Simclock.now clock in
  tick clock;
  ignore (write_file tr "f" "evil");
  let t_evil = Simclock.now clock in
  tick clock;
  let rec_ = Recovery.create drive in
  (match Recovery.restore_file rec_ ~at:t_good fh with Ok _ -> () | Error m -> Alcotest.fail m);
  let h = History.create drive in
  (match History.cat h ~at:t_evil fh with
   | Ok b -> check Alcotest.string "evidence preserved" "evil" (Bytes.to_string b)
   | Error m -> Alcotest.fail m);
  Translator.invalidate_caches tr;
  check Alcotest.string "current is clean" "good" (read_file tr "f")

let test_restore_tree_full_scenario () =
  let clock, drive, tr = mk () in
  (* Legitimate system state. *)
  ignore (write_file tr "sys/log" "day1: all quiet");
  ignore (write_file tr "sys/sshd" "sshd-binary-v1");
  ignore (write_file tr "sys/motd" "welcome");
  let pre_intrusion = Simclock.now clock in
  tick clock;
  (* Intrusion: scrub the log, trojan the daemon, drop a backdoor,
     delete the motd. *)
  ignore (write_file tr "sys/log" "nothing happened here");
  ignore (write_file tr "sys/sshd" "sshd-with-backdoor");
  ignore (write_file tr "sys/backdoor.sh" "#!/bin/sh evil");
  remove tr "sys/motd";
  tick clock;
  (* Admin restores the subtree. *)
  let rec_ = Recovery.create drive in
  (match Recovery.restore_tree rec_ ~at:pre_intrusion ~path:"sys" with
   | Ok report ->
     check Alcotest.bool "restored some files" true (report.Recovery.files_restored >= 3);
     check Alcotest.bool "removed the backdoor" true (report.Recovery.files_removed >= 1)
   | Error m -> Alcotest.fail m);
  Translator.invalidate_caches tr;
  check Alcotest.string "log restored" "day1: all quiet" (read_file tr "sys/log");
  check Alcotest.string "daemon restored" "sshd-binary-v1" (read_file tr "sys/sshd");
  check Alcotest.string "motd resurrected" "welcome" (read_file tr "sys/motd");
  match Translator.lookup_path tr "sys/backdoor.sh" with
  | Error N.Enoent -> ()
  | _ -> Alcotest.fail "backdoor should be gone"

let test_restore_tree_with_subdirs () =
  let clock, drive, tr = mk () in
  ignore (write_file tr "proj/src/main.ml" "let () = ()");
  ignore (write_file tr "proj/doc/readme" "docs");
  let t = Simclock.now clock in
  tick clock;
  ignore (write_file tr "proj/src/main.ml" "EVIL");
  (match Translator.lookup_path tr "proj/doc" with
   | Ok (dir, _) ->
     (match Translator.handle tr (N.Remove { dir; name = "readme" }) with
      | N.R_unit -> ()
      | _ -> Alcotest.fail "remove readme")
   | Error _ -> Alcotest.fail "lookup doc");
  let rec_ = Recovery.create drive in
  (match Recovery.restore_tree rec_ ~at:t ~path:"proj" with
   | Ok _ -> ()
   | Error m -> Alcotest.fail m);
  Translator.invalidate_caches tr;
  check Alcotest.string "nested file" "let () = ()" (read_file tr "proj/src/main.ml");
  check Alcotest.string "resurrected in subdir" "docs" (read_file tr "proj/doc/readme")

(* --- Landmarks -------------------------------------------------------------- *)

module Landmark = S4_tools.Landmark

let test_landmark_survives_expiry () =
  (* A landmark keeps a version alive beyond the detection window. *)
  let clock, drive, tr = mk () in
  let fh = write_file tr "report.tex" "the important draft" in
  let t_draft = Simclock.now clock in
  tick clock;
  ignore (write_file tr "report.tex" "scribbled over");
  let lm = Landmark.create drive in
  (match Landmark.take lm ~name:"draft-v1" ~at:t_draft fh with
   | Ok l ->
     check Alcotest.int "bytes preserved" 19 l.Landmark.l_bytes;
     check Alcotest.int64 "source recorded" fh l.Landmark.l_source
   | Error m -> Alcotest.fail m);
  (* Age everything out of the pool. *)
  Simclock.advance clock (Int64.mul 30L (Int64.mul 86_400L 1_000_000_000L));
  ignore (Drive.handle drive Rpc.admin_cred (Rpc.Flush { until = Simclock.now clock }));
  ignore (Drive.run_cleaner drive);
  (* The original version is gone from the pool... *)
  (match Drive.handle drive Rpc.admin_cred (Rpc.Read { oid = fh; off = 0; len = 19; at = Some t_draft }) with
   | Rpc.R_data b when Bytes.to_string b = "the important draft" ->
     Alcotest.fail "version should have aged out"
   | _ -> ());
  (* ...but the landmark still has it. *)
  match Landmark.contents lm "draft-v1" with
  | Ok b -> check Alcotest.string "landmark intact" "the important draft" (Bytes.to_string b)
  | Error m -> Alcotest.fail m

let test_landmark_index_and_restore () =
  let clock, drive, tr = mk () in
  let fh = write_file tr "conf" "golden config" in
  let t = Simclock.now clock in
  tick clock;
  ignore (write_file tr "conf" "broken config");
  let lm = Landmark.create drive in
  (match Landmark.take lm ~name:"golden" ~at:t fh with Ok _ -> () | Error m -> Alcotest.fail m);
  check Alcotest.bool "listed" true (List.exists (fun l -> l.Landmark.l_name = "golden") (Landmark.list lm));
  check Alcotest.bool "duplicate refused" true
    (match Landmark.take lm ~name:"golden" ~at:t fh with Error _ -> true | Ok _ -> false);
  (match Landmark.restore_to lm "golden" fh with
   | Ok n -> check Alcotest.int "restored bytes" 13 n
   | Error m -> Alcotest.fail m);
  Translator.invalidate_caches tr;
  check Alcotest.string "live file restored" "golden config" (read_file tr "conf")

let test_landmark_index_is_versioned_too () =
  (* The landmark index is an ordinary object: an intruder deleting a
     landmark entry is itself recoverable. *)
  let _, drive, tr = mk () in
  let fh = write_file tr "x" "v" in
  let lm = Landmark.create drive in
  (match Landmark.take lm ~name:"keeper" ~at:(Simclock.now (Drive.clock drive)) fh with
   | Ok _ -> ()
   | Error m -> Alcotest.fail m);
  let h = History.create drive in
  (match History.mount_at h "landmarks" with
   | Ok idx -> check Alcotest.bool "index has versions" true (History.versions_of h idx <> [])
   | Error m -> Alcotest.fail m)

(* --- Diagnosis ------------------------------------------------------------ *)

let test_damage_report () =
  let clock, drive, _tr = mk () in
  let intruder = Rpc.user_cred ~user:13 ~client:666 in
  let oid =
    match Drive.handle drive intruder (Rpc.Create { acl = [] }) with
    | Rpc.R_oid oid -> oid
    | _ -> Alcotest.fail "create"
  in
  let since = Simclock.now clock in
  ignore (Drive.handle drive intruder (Rpc.Write { oid; off = 0; len = 4; data = Some (Bytes.of_string "evil") }));
  tick clock;
  ignore (Drive.handle drive intruder (Rpc.Read { oid; off = 0; len = 4; at = None }));
  let report = Diagnosis.damage_report ~client:666 ~since ~until:Int64.max_int (Target.of_drive drive) in
  (match List.find_opt (fun a -> a.Diagnosis.a_oid = oid) report with
   | Some a ->
     check Alcotest.bool "write counted" true (a.Diagnosis.a_writes >= 1);
     check Alcotest.bool "read counted" true (a.Diagnosis.a_reads >= 1)
   | None -> Alcotest.fail "object missing from report");
  (* Another client's view is empty. *)
  check Alcotest.int "innocent client clean" 0
    (List.length (Diagnosis.damage_report ~client:1234 ~since ~until:Int64.max_int (Target.of_drive drive)))

let test_taint_edges () =
  let clock, drive, _ = mk () in
  let user = Rpc.user_cred ~user:5 ~client:50 in
  let mk_obj () =
    match Drive.handle drive user (Rpc.Create { acl = [] }) with
    | Rpc.R_oid oid -> oid
    | _ -> Alcotest.fail "create"
  in
  let src = mk_obj () in
  let dst = mk_obj () in
  ignore (Drive.handle drive user (Rpc.Write { oid = src; off = 0; len = 3; data = Some (Bytes.of_string "src") }));
  let since = Simclock.now clock in
  tick clock;
  (* Read src then promptly write dst: a compile-like dependency. *)
  ignore (Drive.handle drive user (Rpc.Read { oid = src; off = 0; len = 3; at = None }));
  Simclock.advance clock 100_000_000L;
  ignore (Drive.handle drive user (Rpc.Write { oid = dst; off = 0; len = 3; data = Some (Bytes.of_string "out") }));
  let edges = Diagnosis.taint_edges ~client:50 ~since ~until:Int64.max_int (Target.of_drive drive) in
  check Alcotest.bool "src->dst edge found" true
    (List.exists (fun e -> e.Diagnosis.src = src && e.Diagnosis.dst = dst) edges)

let test_taint_horizon () =
  let clock, drive, _ = mk () in
  let user = Rpc.user_cred ~user:5 ~client:50 in
  let mk_obj () =
    match Drive.handle drive user (Rpc.Create { acl = [] }) with
    | Rpc.R_oid oid -> oid
    | _ -> Alcotest.fail "create"
  in
  let src = mk_obj () and dst = mk_obj () in
  let since = Simclock.now clock in
  ignore (Drive.handle drive user (Rpc.Read { oid = src; off = 0; len = 0; at = None }));
  (* A long pause: outside the dependency horizon. *)
  Simclock.advance clock 60_000_000_000L;
  ignore (Drive.handle drive user (Rpc.Write { oid = dst; off = 0; len = 1; data = Some (Bytes.of_string "x") }));
  let edges = Diagnosis.taint_edges ~client:50 ~since ~until:Int64.max_int (Target.of_drive drive) in
  check Alcotest.bool "no stale edge" false
    (List.exists (fun e -> e.Diagnosis.src = src && e.Diagnosis.dst = dst) edges)

let test_timeline_and_denials () =
  let clock, drive, _ = mk () in
  let alice = Rpc.user_cred ~user:1 ~client:1 in
  let bob = Rpc.user_cred ~user:2 ~client:2 in
  let oid =
    match Drive.handle drive alice (Rpc.Create { acl = [] }) with
    | Rpc.R_oid oid -> oid
    | _ -> Alcotest.fail "create"
  in
  let since = Simclock.now clock in
  ignore (Drive.handle drive alice (Rpc.Write { oid; off = 0; len = 1; data = Some (Bytes.of_string "x") }));
  ignore (Drive.handle drive bob (Rpc.Read { oid; off = 0; len = 1; at = None }));
  (* denied *)
  let tl = Diagnosis.timeline ~oid ~since ~until:Int64.max_int (Target.of_drive drive) in
  check Alcotest.bool "timeline has write" true (List.exists (fun r -> r.S4.Audit.op = "write") tl);
  let denials = Diagnosis.suspicious_denials ~since ~until:Int64.max_int (Target.of_drive drive) in
  check Alcotest.bool "bob's probe flagged" true
    (List.exists (fun r -> r.S4.Audit.user = 2 && not r.S4.Audit.ok) denials)

(* --- Disk image persistence -------------------------------------------- *)

module Disk_image = S4_tools.Disk_image

let test_image_roundtrip () =
  let path = Filename.temp_file "s4img" ".img" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let clock, drive, tr = mk ~mb:16 () in
      ignore (write_file tr "etc/data" "persisted across processes");
      Simclock.advance clock 123_456_789L;
      S4.Audit.flush (Drive.audit drive);
      S4_seglog.Log.sync (Drive.log drive);
      let disk = S4_seglog.Log.disk (Drive.log drive) in
      Disk_image.save path clock disk;
      (* A "new process": load and attach. *)
      let clock2, disk2 = Disk_image.load path in
      check Alcotest.int64 "clock restored" (Simclock.now clock) (Simclock.now clock2);
      let drive2 = Drive.attach disk2 in
      let tr2 = Translator.mount (Translator.Local drive2) in
      check Alcotest.string "contents restored" "persisted across processes"
        (read_file tr2 "etc/data");
      check (Alcotest.list Alcotest.string) "fsck clean after reload" [] (Drive.fsck drive2))

let test_image_rejects_garbage () =
  let path = Filename.temp_file "s4img" ".img" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not an image at all";
      close_out oc;
      check Alcotest.bool "rejected" true
        (try
           ignore (Disk_image.load path);
           false
         with Failure _ | S4_util.Bcodec.Decode_error _ -> true))

let () =
  Alcotest.run "s4_tools"
    [
      ( "history",
        [
          Alcotest.test_case "ls and cat" `Quick test_history_ls_and_cat;
          Alcotest.test_case "time travel ls" `Quick test_history_time_travel_ls;
          Alcotest.test_case "cat old version" `Quick test_history_cat_old_version;
          Alcotest.test_case "versions" `Quick test_history_versions;
          Alcotest.test_case "non-admin denied" `Quick test_history_non_admin_denied;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "restore file" `Quick test_restore_file;
          Alcotest.test_case "restore is versioned" `Quick test_restore_is_versioned;
          Alcotest.test_case "full intrusion scenario" `Quick test_restore_tree_full_scenario;
          Alcotest.test_case "subdirectories" `Quick test_restore_tree_with_subdirs;
        ] );
      ( "landmarks",
        [
          Alcotest.test_case "survives expiry" `Quick test_landmark_survives_expiry;
          Alcotest.test_case "index and restore" `Quick test_landmark_index_and_restore;
          Alcotest.test_case "index versioned" `Quick test_landmark_index_is_versioned_too;
        ] );
      ( "disk-image",
        [
          Alcotest.test_case "roundtrip" `Quick test_image_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick test_image_rejects_garbage;
        ] );
      ( "diagnosis",
        [
          Alcotest.test_case "damage report" `Quick test_damage_report;
          Alcotest.test_case "taint edges" `Quick test_taint_edges;
          Alcotest.test_case "taint horizon" `Quick test_taint_horizon;
          Alcotest.test_case "timeline and denials" `Quick test_timeline_and_denials;
        ] );
    ]
