(** The "S4 client": an NFSv2-to-S4 translator.

    Overlays a file system on the drive's flat object namespace:
    directory objects hold name-to-handle lists, file and symlink
    objects hold data, and the NFSv2 attribute structure lives in each
    object's opaque attribute space. NFS file handles are ObjectIDs.

    Two deployments, per Figure 1 of the paper:
    - {b Remote} (Fig. 1a): the translator runs on the client machine
      as a user-level loopback NFS server and talks S4 RPC over the
      network to a network-attached drive.
    - {b Local} (Fig. 1b): the translator is linked into the storage
      server, forming an S4-enhanced NFS server; NFS itself then
      crosses the network (see {!Server}).

    To honour NFSv2 stability, every modifying operation ends with a
    drive sync, batched onto the final S4 RPC of the operation. The
    translator keeps read-only attribute and directory caches. *)

type transport =
  | Local of S4.Drive.t
  | Remote of S4.Client.t
  | Backend of S4.Backend.t
      (** any producer of the uniform vectored surface — a shard
          router, a networked client, a mirrored pair. (This replaces
          the translator-private [backend] record: one
          {!S4.Backend.t} now serves every consumer.) *)

type t

val mount :
  ?partition:string -> ?cred:S4.Rpc.credential -> transport -> t
(** Attach to (or create) the file system named [partition] (default
    "root") on the drive: resolves the root directory through PMount,
    creating the root object and partition entry on first use. *)

val root : t -> Nfs_types.fh
val transport : t -> transport
val cred : t -> S4.Rpc.credential

val handle : t -> Nfs_types.req -> Nfs_types.resp
(** Serve one NFS request (one or more S4 RPCs). Never raises. *)

val rpc_count : t -> int
(** S4 RPCs issued so far (drive operations per NFS op metric). *)

val attr_cache_stats : t -> int * int
(** (hits, misses). *)

val invalidate_caches : t -> unit
(** Drop the read caches (used to model cold-cache phases). When the
    drive is timing-only ([keep_data:false]) the directory cache is
    retained — it is then the only authoritative copy of the
    namespace. *)

(** {1 Path helpers}

    Convenience for tests, examples and workloads: slash-separated
    paths resolved from the root. *)

val lookup_path : t -> string -> (Nfs_types.fh * Nfs_types.attr, Nfs_types.error) result
val mkdir_p : t -> string -> (Nfs_types.fh, Nfs_types.error) result
val write_file : t -> string -> Bytes.t -> (Nfs_types.fh, Nfs_types.error) result
(** Create-or-truncate then write the whole contents. *)

val read_file : t -> string -> (Bytes.t, Nfs_types.error) result

(** {1 Batched multi-file operations}

    The whole set of mutations crosses the backend as one vectored
    [submit ~sync:true]: n files share a single group-commit barrier
    instead of paying one each. Results are positional — one file's
    failure does not disturb the others (per-request atomicity,
    per-batch durability). *)

val write_files :
  t -> (string * Bytes.t) list -> (Nfs_types.fh, Nfs_types.error) result list
(** Create-or-truncate-then-write each [(path, contents)]; parent
    directories are created as needed. *)

val remove_files : t -> string list -> (unit, Nfs_types.error) result list
(** Remove each file or symlink (never a directory). *)
