(** Per-shard worker domains.

    A pool of OCaml 5 domains, one bounded MPSC channel each, used by
    the shard router to execute disjoint sub-batches of a request
    batch in parallel. Jobs are pinned by slot — [run] executes job
    [slot] on worker [slot mod size] — so the same shard always lands
    on the same domain and its drive stack is owned by exactly one
    domain at a time.

    The pool itself must be driven from one domain at a time (the
    router's backend mutex guarantees this); only the workers run
    concurrently. *)

type t

val create : int -> t
(** [create n] makes a pool of [n] workers. Domains are spawned
    lazily, on the first job each worker receives. *)

val size : t -> int

val run : t -> (int * (unit -> unit)) list -> unit
(** [run t jobs] executes every [(slot, job)] — job on worker
    [slot mod size t] — and waits for all of them. Jobs with distinct
    slots run in parallel; jobs sharing a worker run in slot
    submission order. If any job raises, the first exception is
    re-raised here after all jobs finish. A single-job list runs
    inline on the caller. *)

val close : t -> unit
(** Stop and join every worker domain. Queued jobs are drained first;
    submitting after [close] raises. *)
