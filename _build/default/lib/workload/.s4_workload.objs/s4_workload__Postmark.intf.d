lib/workload/postmark.mli: Format Systems
