(** CRC-32 (IEEE 802.3 polynomial, reflected) used to protect on-disk
    structures: segment summaries, journal sectors and checkpoints.

    The implementation is the classic table-driven byte-at-a-time
    algorithm; it matches the output of POSIX [cksum -o 3] / zlib
    [crc32]. *)

type t = int32

val init : t
(** Initial accumulator (all ones, pre-inverted). *)

val update : t -> Bytes.t -> pos:int -> len:int -> t
(** [update acc b ~pos ~len] folds [len] bytes of [b] starting at [pos]
    into the accumulator. Raises [Invalid_argument] on bad ranges. *)

val finish : t -> int32
(** Final inversion. *)

val bytes : Bytes.t -> int32
(** [bytes b] is the CRC-32 of all of [b]. *)

val string : string -> int32
(** [string s] is the CRC-32 of all of [s]. *)

val sub : Bytes.t -> pos:int -> len:int -> int32
(** CRC-32 of a byte range. *)
