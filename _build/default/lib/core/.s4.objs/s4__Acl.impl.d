lib/core/acl.ml: Bytes Format List S4_util
