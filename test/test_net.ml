(* The networking subsystem: wire-codec round trips, adversarial
   (truncated / bit-flipped / oversized / garbage) decoding, the
   sans-IO server session's protocol decisions, connection-derived
   identity (anti-spoofing), client retry/reconnect behaviour, and
   real TCP round trips against the threaded daemon. *)

module Simclock = S4_util.Simclock
module Geometry = S4_disk.Geometry
module Sim_disk = S4_disk.Sim_disk
module Drive = S4.Drive
module Rpc = S4.Rpc
module Acl = S4.Acl
module Audit = S4.Audit
module Throttle = S4.Throttle
module Metrics = S4_obs.Metrics
module Wire = S4_net.Wire
module Netserver = S4_net.Server
module Netclient = S4_net.Client
module Nettransport = S4_net.Transport

let check = Alcotest.check
let qtest = Qseed.qtest

let mk_drive ?(config = Drive.default_config) () =
  let clock = Simclock.create () in
  Drive.format ~config
    (Sim_disk.create
       ~geometry:(Geometry.with_capacity Geometry.cheetah_9gb ~bytes:(32 * 1024 * 1024))
       clock)

let cred = Rpc.user_cred ~user:1 ~client:1

let create_object handle =
  match handle cred ?sync:None (Rpc.Create { acl = Acl.default ~owner:1 }) with
  | Rpc.R_oid oid -> oid
  | r -> Alcotest.failf "create: %a" Rpc.pp_resp r

let decode_all b =
  let rec go pos acc =
    if pos >= Bytes.length b then List.rev acc
    else
      match Wire.decode b ~pos ~avail:(Bytes.length b - pos) with
      | Wire.Frame (f, used) -> go (pos + used) (f :: acc)
      | _ -> List.rev acc
  in
  go 0 []

(* --- generators ------------------------------------------------------- *)

let gen_oid = QCheck.Gen.(map Int64.of_int (0 -- 1_000_000))
let gen_time = QCheck.Gen.(map Int64.of_int (0 -- 1_000_000_000))
let gen_at = QCheck.Gen.(opt gen_time)
let gen_principal = QCheck.Gen.(oneof [ return (-1); 0 -- 200 ])
let gen_name = QCheck.Gen.(string_size ~gen:(char_range 'a' 'z') (1 -- 12))
let gen_bytes = QCheck.Gen.(map Bytes.of_string (string_size (0 -- 256)))
let gen_data = QCheck.Gen.opt gen_bytes

let all_perms = [ Acl.Read; Acl.Write; Acl.Delete; Acl.Set_attr; Acl.Set_acl ]

let gen_perms =
  QCheck.Gen.(
    map (fun bits -> List.filteri (fun i _ -> bits land (1 lsl i) <> 0) all_perms) (0 -- 31))

let gen_entry =
  QCheck.Gen.(
    let* user = gen_principal and* client = gen_principal in
    let* perms = gen_perms and* recovery = bool in
    return { Acl.user; client; perms; recovery })

let gen_acl = QCheck.Gen.(list_size (0 -- 3) gen_entry)

let gen_req =
  QCheck.Gen.(
    let off = 0 -- 100_000 and len = 0 -- 8_192 in
    oneof
      [
        map (fun acl -> Rpc.Create { acl }) gen_acl;
        map (fun oid -> Rpc.Delete { oid }) gen_oid;
        (let* oid = gen_oid and* off = off and* len = len and* at = gen_at in
         return (Rpc.Read { oid; off; len; at }));
        (let* oid = gen_oid and* off = off and* len = len and* data = gen_data in
         return (Rpc.Write { oid; off; len; data }));
        (let* oid = gen_oid and* len = len and* data = gen_data in
         return (Rpc.Append { oid; len; data }));
        (let* oid = gen_oid and* size = 0 -- 100_000 in
         return (Rpc.Truncate { oid; size }));
        (let* oid = gen_oid and* at = gen_at in
         return (Rpc.Get_attr { oid; at }));
        (let* oid = gen_oid and* attr = gen_bytes in
         return (Rpc.Set_attr { oid; attr }));
        (let* oid = gen_oid and* acl_user = gen_principal and* at = gen_at in
         return (Rpc.Get_acl_by_user { oid; acl_user; at }));
        (let* oid = gen_oid and* index = 0 -- 7 and* at = gen_at in
         return (Rpc.Get_acl_by_index { oid; index; at }));
        (let* oid = gen_oid and* index = 0 -- 7 and* entry = gen_entry in
         return (Rpc.Set_acl { oid; index; entry }));
        (let* name = gen_name and* oid = gen_oid in
         return (Rpc.P_create { name; oid }));
        map (fun name -> Rpc.P_delete { name }) gen_name;
        map (fun at -> Rpc.P_list { at }) gen_at;
        (let* name = gen_name and* at = gen_at in
         return (Rpc.P_mount { name; at }));
        return Rpc.Sync;
        map (fun until -> Rpc.Flush { until }) gen_time;
        (let* oid = gen_oid and* until = gen_time in
         return (Rpc.Flush_object { oid; until }));
        map (fun window -> Rpc.Set_window { window }) gen_time;
        (let* since = gen_time and* until = gen_time in
         return (Rpc.Read_audit { since; until }));
      ])

let gen_error =
  QCheck.Gen.(
    oneof
      [
        return Rpc.Not_found;
        return Rpc.Permission_denied;
        return Rpc.Object_deleted;
        return Rpc.No_space;
        map (fun m -> Rpc.Bad_request m) gen_name;
        map (fun m -> Rpc.Io_error m) gen_name;
      ])

let gen_audit_record =
  QCheck.Gen.(
    let* at = gen_time and* user = gen_principal and* client = gen_principal in
    let* op = gen_name and* oid = gen_oid and* info = gen_name and* ok = bool in
    return { Audit.at; user; client; op; oid; info; ok })

let gen_resp =
  QCheck.Gen.(
    oneof
      [
        return Rpc.R_unit;
        map (fun oid -> Rpc.R_oid oid) gen_oid;
        map (fun b -> Rpc.R_data b) gen_bytes;
        map (fun n -> Rpc.R_size n) (0 -- 10_000_000);
        map (fun b -> Rpc.R_attr b) gen_bytes;
        map (fun e -> Rpc.R_acl e) gen_entry;
        map (fun ns -> Rpc.R_names ns) (list_size (0 -- 5) gen_name);
        map (fun rs -> Rpc.R_audit rs) (list_size (0 -- 4) gen_audit_record);
        map (fun e -> Rpc.R_error e) gen_error;
      ])

let gen_cred =
  QCheck.Gen.(
    let* user = 0 -- 100 and* client = 0 -- 100 and* admin = bool in
    return { Rpc.user; client; admin })

let gen_frame =
  QCheck.Gen.(
    let xid = map Int64.of_int (0 -- 1_000_000) in
    frequency
      [
        (1, map2 (fun version claim -> Wire.Hello { version; claim }) (0 -- 3) gen_principal);
        ( 1,
          let* version = 0 -- 3 and* identity = gen_principal and* now = gen_time in
          return (Wire.Hello_ack { version; identity; now }) );
        ( 6,
          let* xid = xid and* cred = gen_cred and* sync = bool and* req = gen_req in
          return (Wire.Request { xid; cred; sync; req }) );
        ( 6,
          let* xid = xid and* resp = gen_resp and* now = gen_time
          and* lease = gen_time in
          return (Wire.Response { xid; resp; now; lease }) );
        ( 1,
          let* xid = xid and* message = gen_name in
          return (Wire.Proto_error { xid; message }) );
        (1, map (fun xid -> Wire.Stat { xid }) xid);
        ( 1,
          let* xid = xid and* total = 0 -- 1_000_000 and* free = 0 -- 1_000_000
          and* now = gen_time and* batch = 0 -- 1024 in
          return (Wire.Stat_ack { xid; total; free; now; batch }) );
        (1, return Wire.Goodbye);
        ( 2,
          let* xid = xid and* cred = gen_cred and* sync = bool
          and* reqs = list_size (0 -- 4) gen_req in
          return (Wire.Batch { xid; cred; sync; reqs = Array.of_list reqs }) );
        ( 2,
          let* xid = xid and* cells = list_size (0 -- 4) (pair gen_resp gen_time)
          and* now = gen_time in
          let resps = Array.of_list (List.map fst cells) in
          let leases = Array.of_list (List.map snd cells) in
          return (Wire.Batch_reply { xid; resps; now; leases }) );
      ])

let print_frame f = Wire.frame_name f
let arb_frame = QCheck.make ~print:print_frame gen_frame

(* --- codec properties ------------------------------------------------- *)

let prop_roundtrip =
  QCheck.Test.make ~name:"decode (encode f) = f, consuming every byte" ~count:400 arb_frame
    (fun f ->
      let b = Wire.encode f in
      match Wire.decode b ~pos:0 ~avail:(Bytes.length b) with
      | Wire.Frame (g, used) -> used = Bytes.length b && g = f
      | Wire.Need_more _ -> QCheck.Test.fail_report "Need_more on a complete frame"
      | Wire.Corrupt m -> QCheck.Test.fail_reportf "Corrupt on a valid frame: %s" m)

let prop_truncation =
  QCheck.Test.make ~name:"every strict prefix asks for more bytes" ~count:200
    (QCheck.make ~print:(fun (f, _) -> print_frame f) QCheck.Gen.(pair gen_frame (0 -- 10_000)))
    (fun (f, cut) ->
      let b = Wire.encode f in
      let avail = cut mod Bytes.length b in
      match Wire.decode b ~pos:0 ~avail with
      | Wire.Need_more k -> k > 0
      | Wire.Frame _ -> QCheck.Test.fail_report "whole frame from a strict prefix"
      | Wire.Corrupt m -> QCheck.Test.fail_reportf "valid prefix called corrupt: %s" m)

let prop_bitflip =
  QCheck.Test.make ~name:"a flipped bit never yields a valid frame" ~count:400
    (QCheck.make ~print:(fun (f, _) -> print_frame f) QCheck.Gen.(pair gen_frame (0 -- 1_000_000)))
    (fun (f, bit) ->
      let b = Wire.encode f in
      let bit = bit mod (8 * Bytes.length b) in
      let i = bit / 8 in
      Bytes.set_uint8 b i (Bytes.get_uint8 b i lxor (1 lsl (bit mod 8)));
      match Wire.decode b ~pos:0 ~avail:(Bytes.length b) with
      | Wire.Frame _ -> QCheck.Test.fail_report "corrupted frame accepted"
      | Wire.Need_more _ | Wire.Corrupt _ -> true)

let prop_garbage =
  QCheck.Test.make ~name:"random bytes never crash the decoder" ~count:400
    (QCheck.make
       ~print:(fun s -> Printf.sprintf "%d bytes" (String.length s))
       QCheck.Gen.(string_size (0 -- 512)))
    (fun s ->
      let b = Bytes.of_string s in
      match Wire.decode b ~pos:0 ~avail:(Bytes.length b) with
      | Wire.Frame _ -> String.length s >= 4 && String.sub s 0 4 = "S4WP"
      | Wire.Need_more _ | Wire.Corrupt _ -> true)

let test_oversized_rejected_from_header () =
  (* A declared payload beyond the cap must be rejected from the header
     alone — before the decoder would ever buffer the payload. *)
  let b = Wire.encode Wire.Goodbye in
  S4_util.Bcodec.set_u32 b 16 (Wire.max_frame_default + 1);
  (match Wire.decode b ~pos:0 ~avail:Wire.header_len with
  | Wire.Corrupt _ -> ()
  | Wire.Need_more _ -> Alcotest.fail "decoder waits for an oversized payload"
  | Wire.Frame _ -> Alcotest.fail "oversized frame accepted");
  (* Within the cap the same truncated header is just incomplete. *)
  let b = Wire.encode Wire.Goodbye in
  match Wire.decode b ~pos:0 ~avail:Wire.header_len with
  | Wire.Need_more _ -> ()
  | _ -> Alcotest.fail "in-bounds header should await its payload"

(* --- sans-IO session -------------------------------------------------- *)

let request xid req =
  Wire.encode (Wire.Request { xid = Int64.of_int xid; cred; sync = false; req })

let test_session_garbage_audited () =
  let drive = mk_drive () in
  let srv = Netserver.of_drive drive in
  let sess = Netserver.Session.create ~identity:9 srv in
  let before = Metrics.counter "net/decode_reject" in
  let garbage = Bytes.of_string "GARBAGE GARBAGE GARBAGE" in
  Netserver.Session.feed sess garbage 0 (Bytes.length garbage);
  check Alcotest.bool "session closing" true (Netserver.Session.closing sess);
  let frames = decode_all (Netserver.Session.output sess) in
  (match frames with
  | [ Wire.Proto_error _ ] -> ()
  | _ -> Alcotest.failf "expected one Proto_error, got %d frames" (List.length frames));
  check Alcotest.bool "decode_reject counted" true
    (Metrics.counter "net/decode_reject" > before);
  let rejects =
    List.filter (fun (r : Audit.record) -> r.Audit.op = "net_reject")
      (Audit.records (Drive.audit drive) ())
  in
  (match rejects with
  | [ r ] -> check Alcotest.int "audit names the connection" 9 r.Audit.client
  | rs -> Alcotest.failf "expected one net_reject audit record, got %d" (List.length rs));
  (* Input after the rejection is discarded, not parsed. *)
  let more = request 1 Rpc.Sync in
  Netserver.Session.feed sess more 0 (Bytes.length more);
  Netserver.Session.run sess;
  check Alcotest.int "no frames after close" 0
    (List.length (decode_all (Netserver.Session.output sess)))

let test_session_max_inflight () =
  let drive = mk_drive () in
  let config = { Netserver.default_config with Netserver.max_inflight = 2 } in
  let srv = Netserver.of_drive ~config drive in
  let sess = Netserver.Session.create srv in
  let burst = Bytes.concat Bytes.empty (List.init 3 (fun i -> request i Rpc.Sync)) in
  Netserver.Session.feed sess burst 0 (Bytes.length burst);
  check Alcotest.bool "over-limit pipelining closes the connection" true
    (Netserver.Session.closing sess);
  Netserver.Session.run sess;
  let frames = decode_all (Netserver.Session.output sess) in
  let protos, resps =
    List.partition (function Wire.Proto_error _ -> true | _ -> false) frames
  in
  check Alcotest.int "one protocol error" 1 (List.length protos);
  check Alcotest.int "queued requests still answered" 2 (List.length resps)

let test_session_backend_exception () =
  let clock = Simclock.create () in
  let backend =
    S4.Backend.make ~clock ~keep_data:true
      ~capacity:(fun () -> (0, 0))
      (fun _ ?sync:_ _ -> failwith "backend blew up")
  in
  let srv = Netserver.create backend in
  let client = Netclient.connect (Nettransport.loopback srv) in
  (match Netclient.handle client cred (Rpc.Get_attr { oid = 1L; at = None }) with
  | Rpc.R_error (Rpc.Io_error _) -> ()
  | r -> Alcotest.failf "expected Io_error, got %a" Rpc.pp_resp r);
  (* The connection survives its backend's exception. *)
  match Netclient.handle client cred (Rpc.Get_attr { oid = 2L; at = None }) with
  | Rpc.R_error (Rpc.Io_error _) -> check Alcotest.int "no reconnect" 0 (Netclient.reconnects client)
  | r -> Alcotest.failf "expected Io_error, got %a" Rpc.pp_resp r

(* --- loopback client -------------------------------------------------- *)

let test_loopback_rpc () =
  let drive = mk_drive () in
  let srv = Netserver.of_drive drive in
  let client = Netclient.connect (Nettransport.loopback srv) in
  let oid = create_object (Netclient.handle client) in
  let payload = Bytes.of_string "networked self-securing storage" in
  (match
     Netclient.handle client cred
       (Rpc.Write { oid; off = 0; len = Bytes.length payload; data = Some payload })
   with
  | Rpc.R_unit -> ()
  | r -> Alcotest.failf "write: %a" Rpc.pp_resp r);
  (match
     Netclient.handle client cred
       (Rpc.Read { oid; off = 0; len = Bytes.length payload; at = None })
   with
  | Rpc.R_data b -> check Alcotest.bytes "read back" payload b
  | r -> Alcotest.failf "read: %a" Rpc.pp_resp r);
  let total, free = Netclient.capacity client in
  check Alcotest.bool "capacity sane" true (total > 0 && free > 0 && free <= total);
  check Alcotest.int "identity from handshake" 1 (Netclient.identity client);
  Netclient.close client

let test_identity_not_spoofable () =
  let drive = mk_drive () in
  let srv = Netserver.of_drive drive in
  let spoofing = Rpc.user_cred ~user:1 ~client:99 in
  let payload = Bytes.make 4096 'q' in
  let run identity =
    let client = Netclient.connect (Nettransport.loopback ~identity srv) in
    let oid = create_object (Netclient.handle client) in
    for _ = 1 to 4 do
      ignore
        (Netclient.handle client spoofing
           (Rpc.Write { oid; off = 0; len = 4096; data = Some payload }))
    done;
    Netclient.close client
  in
  run 7;
  run 8;
  (* The audit trail names the connections, never the claimed id. *)
  let clients =
    List.sort_uniq compare
      (List.map (fun (r : Audit.record) -> r.Audit.client) (Audit.records (Drive.audit drive) ()))
  in
  check (Alcotest.list Alcotest.int) "audit client ids" [ 7; 8 ] clients;
  (* And the growth throttle charges them, not the spoofed id. *)
  match Drive.throttle drive with
  | None -> Alcotest.fail "default drive config should have a throttle"
  | Some th ->
    check Alcotest.bool "client 7 charged" true (Throttle.client_share th ~client:7 > 0.0);
    check Alcotest.bool "client 8 charged" true (Throttle.client_share th ~client:8 > 0.0);
    check (Alcotest.float 0.0) "spoofed id uncharged" 0.0 (Throttle.client_share th ~client:99)

let test_admin_gating () =
  let drive = mk_drive () in
  let open_srv = Netserver.of_drive drive in
  let client = Netclient.connect (Nettransport.loopback open_srv) in
  (match Netclient.handle client Rpc.admin_cred Rpc.Sync with
  | Rpc.R_unit -> ()
  | r -> Alcotest.failf "admin sync: %a" Rpc.pp_resp r);
  let config = { Netserver.default_config with Netserver.allow_admin = false } in
  let gated = Netserver.of_drive ~config drive in
  let client = Netclient.connect (Nettransport.loopback gated) in
  (match Netclient.handle client Rpc.admin_cred Rpc.Sync with
  | Rpc.R_error Rpc.Permission_denied -> ()
  | r -> Alcotest.failf "expected Permission_denied, got %a" Rpc.pp_resp r);
  match Netclient.handle client cred Rpc.Sync with
  | Rpc.R_unit -> ()
  | r -> Alcotest.failf "non-admin should still pass: %a" Rpc.pp_resp r

let test_oversized_io_rejected () =
  let drive = mk_drive () in
  let config = { Netserver.default_config with Netserver.max_io = 64 * 1024 } in
  let srv = Netserver.of_drive ~config drive in
  let client = Netclient.connect (Nettransport.loopback srv) in
  let oid = create_object (Netclient.handle client) in
  (match
     Netclient.handle client cred (Rpc.Read { oid; off = 0; len = (64 * 1024) + 1; at = None })
   with
  | Rpc.R_error (Rpc.Bad_request _) -> ()
  | r -> Alcotest.failf "expected Bad_request, got %a" Rpc.pp_resp r);
  (* A mismatched data length is a malformed request, not a drive op. *)
  match
    Netclient.handle client cred
      (Rpc.Write { oid; off = 0; len = 100; data = Some (Bytes.make 7 'x') })
  with
  | Rpc.R_error (Rpc.Bad_request _) -> ()
  | r -> Alcotest.failf "expected Bad_request, got %a" Rpc.pp_resp r

let test_retry_and_reconnect () =
  let drive = mk_drive () in
  let srv = Netserver.of_drive drive in
  let inner = Nettransport.loopback srv in
  let endpoints = ref [] in
  let transport =
    {
      Nettransport.label = "flaky-loopback";
      connect =
        (fun () ->
          let e = inner.Nettransport.connect () in
          endpoints := e :: !endpoints;
          e);
    }
  in
  let sever () = (List.hd !endpoints).Nettransport.ep_close () in
  let config =
    { Netclient.default_config with Netclient.max_retries = 3; backoff_ms = 0.05 }
  in
  let client = Netclient.connect ~config transport in
  let oid = create_object (Netclient.handle client) in
  let payload = Bytes.of_string "retry me" in
  ignore
    (Netclient.handle client cred
       (Rpc.Write { oid; off = 0; len = Bytes.length payload; data = Some payload }));
  (* Kill the live connection: an idempotent read reconnects and retries. *)
  sever ();
  (match
     Netclient.handle client cred
       (Rpc.Read { oid; off = 0; len = Bytes.length payload; at = None })
   with
  | Rpc.R_data b -> check Alcotest.bytes "read after reconnect" payload b
  | r -> Alcotest.failf "read after sever: %a" Rpc.pp_resp r);
  check Alcotest.int "one retry" 1 (Netclient.retries client);
  check Alcotest.int "one reconnect" 1 (Netclient.reconnects client);
  (* A mutation on a dead connection must NOT be retried. *)
  sever ();
  (match
     Netclient.handle client cred
       (Rpc.Write { oid; off = 0; len = Bytes.length payload; data = Some payload })
   with
  | Rpc.R_error (Rpc.Io_error _) -> ()
  | r -> Alcotest.failf "expected Io_error for severed mutation, got %a" Rpc.pp_resp r);
  check Alcotest.int "mutation did not retry" 1 (Netclient.retries client);
  (* The client remains usable afterwards. *)
  match
    Netclient.handle client cred
      (Rpc.Read { oid; off = 0; len = Bytes.length payload; at = None })
  with
  | Rpc.R_data _ -> ()
  | r -> Alcotest.failf "read after recovery: %a" Rpc.pp_resp r

(* --- real TCP --------------------------------------------------------- *)

let with_tcp_server ?config f =
  let drive = mk_drive () in
  let srv = Netserver.of_drive ?config drive in
  let listener = Netserver.serve_tcp srv in
  Fun.protect
    ~finally:(fun () -> Netserver.shutdown listener)
    (fun () -> f drive (Netserver.port listener))

let tcp_client ?(max_retries = 1) port =
  let config =
    {
      Netclient.default_config with
      Netclient.max_retries;
      backoff_ms = 0.5;
      req_timeout_s = 5.0;
    }
  in
  Netclient.connect ~config (Nettransport.tcp ~host:"127.0.0.1" ~port)

let test_tcp_rpc_and_pipelining () =
  with_tcp_server (fun _drive port ->
      let client = tcp_client port in
      let oid = create_object (Netclient.handle client) in
      let payload = Bytes.of_string "over real sockets" in
      (match
         Netclient.handle client cred
           (Rpc.Write { oid; off = 0; len = Bytes.length payload; data = Some payload })
       with
      | Rpc.R_unit -> ()
      | r -> Alcotest.failf "tcp write: %a" Rpc.pp_resp r);
      let reads =
        List.init 16 (fun _ -> Rpc.Read { oid; off = 0; len = Bytes.length payload; at = None })
      in
      let resps = Netclient.pipeline client cred reads in
      check Alcotest.int "one response per request" 16 (List.length resps);
      List.iter
        (function
          | Rpc.R_data b -> check Alcotest.bytes "pipelined read" payload b
          | r -> Alcotest.failf "pipelined read: %a" Rpc.pp_resp r)
        resps;
      Netclient.close client)

let test_tcp_garbage_then_service () =
  with_tcp_server (fun drive port ->
      (* A hostile peer sends junk: it gets a protocol error and a
         closed connection... *)
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let junk = Bytes.of_string (String.make 64 '\xAA') in
      ignore (Unix.write fd junk 0 (Bytes.length junk));
      let buf = Bytes.create 4096 in
      let total = ref 0 in
      (try
         let rec drain () =
           let n = Unix.read fd buf !total (Bytes.length buf - !total) in
           if n > 0 then begin
             total := !total + n;
             drain ()
           end
         in
         drain ()
       with Unix.Unix_error _ -> ());
      Unix.close fd;
      (match decode_all (Bytes.sub buf 0 !total) with
      | [ Wire.Proto_error _ ] -> ()
      | fs -> Alcotest.failf "expected Proto_error then EOF, got %d frames" (List.length fs));
      let rejects =
        List.filter (fun (r : Audit.record) -> r.Audit.op = "net_reject")
          (Audit.records (Drive.audit drive) ())
      in
      check Alcotest.bool "garbage audited" true (rejects <> []);
      (* ...and the server keeps serving well-behaved clients. *)
      let client = tcp_client port in
      let oid = create_object (Netclient.handle client) in
      check Alcotest.bool "drive still works" true (Int64.compare oid 0L > 0);
      Netclient.close client)

let test_tcp_shutdown_refuses_new_work () =
  let drive = mk_drive () in
  let srv = Netserver.of_drive drive in
  let listener = Netserver.serve_tcp srv in
  let port = Netserver.port listener in
  let client = tcp_client port in
  let oid = create_object (Netclient.handle client) in
  ignore oid;
  Netserver.shutdown listener;
  match
    Netclient.handle client cred (Rpc.Get_attr { oid; at = None })
  with
  | Rpc.R_error (Rpc.Io_error _) -> ()
  | r -> Alcotest.failf "expected Io_error after shutdown, got %a" Rpc.pp_resp r

(* --- batched submission and version negotiation ----------------------- *)

let test_loopback_batch_submit () =
  let drive = mk_drive () in
  let srv = Netserver.of_drive drive in
  let client = Netclient.connect (Nettransport.loopback srv) in
  let oid = create_object (Netclient.handle client) in
  ignore (Netclient.capacity client);
  check Alcotest.int "server advertised its batch limit" 256
    (Netclient.server_batch_limit client);
  let payload = Bytes.make 256 'z' in
  (* Interleaved writes and reads: each read must observe the write
     that precedes it in the SAME batch (in-order vectored execution). *)
  let reqs =
    Array.init 40 (fun i ->
        if i mod 2 = 0 then
          Rpc.Write { oid; off = i / 2 * 256; len = 256; data = Some payload }
        else Rpc.Read { oid; off = i / 2 * 256; len = 256; at = None })
  in
  let resps = Netclient.submit client cred ~sync:true reqs in
  check Alcotest.int "positional responses" 40 (Array.length resps);
  Array.iteri
    (fun i r ->
      match (i mod 2, r) with
      | 0, Rpc.R_unit -> ()
      | 1, Rpc.R_data b -> check Alcotest.bytes "batched read" payload b
      | _ -> Alcotest.failf "slot %d: %a" i Rpc.pp_resp r)
    resps;
  check Alcotest.int "session negotiated the best version" Wire.version
    (Netclient.version client);
  (* An empty batch with sync is a pure barrier. *)
  let none = Netclient.submit client cred ~sync:true [||] in
  check Alcotest.int "empty batch" 0 (Array.length none);
  Netclient.close client

let test_batch_chunking () =
  (* A submission larger than the server's advertised limit is sliced
     client-side; every slice is answered and reassembled in order. *)
  let config = { Netserver.default_config with Netserver.max_batch = 8 } in
  with_tcp_server ~config (fun _drive port ->
      let client = tcp_client port in
      let oid = create_object (Netclient.handle client) in
      ignore (Netclient.capacity client);
      check Alcotest.int "small limit learned" 8 (Netclient.server_batch_limit client);
      let payload = Bytes.of_string "chunked" in
      (match
         Netclient.handle client cred
           (Rpc.Write { oid; off = 0; len = Bytes.length payload; data = Some payload })
       with
      | Rpc.R_unit -> ()
      | r -> Alcotest.failf "seed write: %a" Rpc.pp_resp r);
      let reqs =
        Array.init 20 (fun _ -> Rpc.Read { oid; off = 0; len = Bytes.length payload; at = None })
      in
      let resps = Netclient.submit client cred ~sync:true reqs in
      check Alcotest.int "all slices answered" 20 (Array.length resps);
      Array.iter
        (function
          | Rpc.R_data b -> check Alcotest.bytes "chunked read" payload b
          | r -> Alcotest.failf "chunked read: %a" Rpc.pp_resp r)
        resps;
      Netclient.close client)

let test_v1_negotiation_fallback () =
  let drive = mk_drive () in
  let srv = Netserver.of_drive drive in
  let config = { Netclient.default_config with Netclient.advertise_version = 1 } in
  let client = Netclient.connect ~config (Nettransport.loopback srv) in
  let oid = create_object (Netclient.handle client) in
  check Alcotest.int "negotiated down to v1" 1 (Netclient.version client);
  let payload = Bytes.make 512 'v' in
  let reqs =
    Array.init 8 (fun i -> Rpc.Write { oid; off = i * 512; len = 512; data = Some payload })
  in
  (* submit still works: it degrades to pipelined Requests with the
     sync riding on the last one. *)
  let resps = Netclient.submit client cred ~sync:true reqs in
  check Alcotest.int "positional responses over v1" 8 (Array.length resps);
  Array.iter
    (function Rpc.R_unit -> () | r -> Alcotest.failf "v1 submit: %a" Rpc.pp_resp r)
    resps;
  (match Netclient.handle client cred (Rpc.Read { oid; off = 0; len = 512; at = None }) with
  | Rpc.R_data b -> check Alcotest.bytes "v1 batch landed" payload b
  | r -> Alcotest.failf "read: %a" Rpc.pp_resp r);
  (* The batch advertisement is a v2 payload field; a v1 session never
     sees it. *)
  ignore (Netclient.capacity client);
  check Alcotest.int "no batch advertisement on v1" 0 (Netclient.server_batch_limit client);
  Netclient.close client

let test_batch_frame_on_v1_session_rejected () =
  let drive = mk_drive () in
  let srv = Netserver.of_drive drive in
  let sess = Netserver.Session.create srv in
  let hello = Wire.encode ~version:Wire.min_version (Wire.Hello { version = 1; claim = 1 }) in
  Netserver.Session.feed sess hello 0 (Bytes.length hello);
  check Alcotest.int "session dropped to v1" 1 (Netserver.Session.version sess);
  let batch = Wire.encode (Wire.Batch { xid = 7L; cred; sync = false; reqs = [| Rpc.Sync |] }) in
  Netserver.Session.feed sess batch 0 (Bytes.length batch);
  Netserver.Session.run sess;
  check Alcotest.bool "connection closed" true (Netserver.Session.closing sess);
  match decode_all (Netserver.Session.output sess) with
  | [ Wire.Hello_ack _; Wire.Proto_error _ ] -> ()
  | fs -> Alcotest.failf "expected Hello_ack then Proto_error, got %d frames" (List.length fs)

let test_oversized_batch_rejected () =
  let drive = mk_drive () in
  let config = { Netserver.default_config with Netserver.max_batch = 4 } in
  let srv = Netserver.of_drive ~config drive in
  let sess = Netserver.Session.create srv in
  let reqs = Array.make 5 Rpc.Sync in
  let batch = Wire.encode (Wire.Batch { xid = 9L; cred; sync = false; reqs }) in
  Netserver.Session.feed sess batch 0 (Bytes.length batch);
  Netserver.Session.run sess;
  match decode_all (Netserver.Session.output sess) with
  | [ Wire.Proto_error _ ] -> ()
  | fs -> Alcotest.failf "expected Proto_error, got %d frames" (List.length fs)

(* --- leases and the client cache -------------------------------------- *)

module Cache = S4_net.Cache
module Simclock' = Simclock

let lease_server ?(lease_ns = 60_000_000_000L) () =
  let drive = mk_drive () in
  let config = { Netserver.default_config with Netserver.lease_ns } in
  (drive, Netserver.of_drive ~config drive)

let cached_client ?(advertise_version = Wire.version) srv =
  let config =
    {
      Netclient.default_config with
      Netclient.advertise_version;
      cache_budget = 1 lsl 20;
      cache_journal = true;
    }
  in
  Netclient.connect ~config (Nettransport.loopback srv)

let test_v2_encoding_carries_no_lease () =
  (* The lease fields are v3 payload: encoded at v2 they simply do not
     travel, so a downgraded session degrades to lease-free replies
     rather than corrupting the frame. *)
  let f = Wire.Response { xid = 5L; resp = Rpc.R_unit; now = 777L; lease = 999L } in
  let b = Wire.encode ~version:2 f in
  (match Wire.decode b ~pos:0 ~avail:(Bytes.length b) with
  | Wire.Frame (Wire.Response { xid = 5L; resp = Rpc.R_unit; now = 0L; lease = 0L }, _) -> ()
  | Wire.Frame (g, _) -> Alcotest.failf "unexpected v2 decode: %s" (Wire.frame_name g)
  | _ -> Alcotest.fail "v2 response did not decode");
  let f =
    Wire.Batch_reply { xid = 6L; resps = [| Rpc.R_unit |]; now = 777L; leases = [| 999L |] }
  in
  let b = Wire.encode ~version:2 f in
  match Wire.decode b ~pos:0 ~avail:(Bytes.length b) with
  | Wire.Frame (Wire.Batch_reply { now = 0L; leases = [||]; _ }, _) -> ()
  | Wire.Frame (g, _) -> Alcotest.failf "unexpected v2 decode: %s" (Wire.frame_name g)
  | _ -> Alcotest.fail "v2 batch reply did not decode"

let test_lease_cache_hit_and_invalidate () =
  let drive, srv = lease_server () in
  ignore drive;
  let client = cached_client srv in
  let oid = create_object (Netclient.handle client) in
  let payload = Bytes.of_string "leased bytes" in
  let wr () =
    match
      Netclient.handle client cred
        (Rpc.Write { oid; off = 0; len = Bytes.length payload; data = Some payload })
    with
    | Rpc.R_unit -> ()
    | r -> Alcotest.failf "write: %a" Rpc.pp_resp r
  in
  let rd () =
    match
      Netclient.handle client cred
        (Rpc.Read { oid; off = 0; len = Bytes.length payload; at = None })
    with
    | Rpc.R_data b -> check Alcotest.bytes "read" payload b
    | r -> Alcotest.failf "read: %a" Rpc.pp_resp r
  in
  wr ();
  let frames_at f = Metrics.counter "net/frames_in" - f in
  rd ();
  let cache = Option.get (Netclient.cache client) in
  check Alcotest.int "first read missed" 0 (Cache.hits cache);
  let f0 = Metrics.counter "net/frames_in" in
  rd ();
  rd ();
  check Alcotest.int "repeat reads hit" 2 (Cache.hits cache);
  check Alcotest.int "hits never touched the wire" 0 (frames_at f0);
  check Alcotest.bool "server clock observed" true (Netclient.server_now client > 0L);
  (* The client's own mutation invalidates its cached entries. *)
  wr ();
  rd ();
  check Alcotest.int "read after mutation missed" 2 (Cache.hits cache);
  (match Cache.check cache with Ok () -> () | Error e -> Alcotest.failf "lease checker: %s" e);
  Netclient.close client

let test_lease_expiry_never_served () =
  let lease_ns = 1_000_000_000L in
  let drive, srv = lease_server ~lease_ns () in
  let client = cached_client srv in
  let oid = create_object (Netclient.handle client) in
  let payload = Bytes.of_string "expiring" in
  ignore
    (Netclient.handle client cred
       (Rpc.Write { oid; off = 0; len = Bytes.length payload; data = Some payload }));
  let rd () =
    Netclient.handle client cred (Rpc.Read { oid; off = 0; len = Bytes.length payload; at = None })
  in
  ignore (rd ());
  let cache = Option.get (Netclient.cache client) in
  ignore (rd ());
  check Alcotest.int "lease live: served locally" 1 (Cache.hits cache);
  (* Let the lease lapse; the client learns the server clock from the
     next reply frame (a Sync here), after which the stale entry must
     never be served again. *)
  Simclock'.advance (Drive.clock drive) (Int64.mul 2L lease_ns);
  ignore (Netclient.handle client cred Rpc.Sync);
  ignore (rd ());
  check Alcotest.int "expired lease not served" 1 (Cache.hits cache);
  (* The re-read re-armed a fresh lease. *)
  ignore (rd ());
  check Alcotest.int "fresh lease serves again" 2 (Cache.hits cache);
  (match Cache.check cache with Ok () -> () | Error e -> Alcotest.failf "lease checker: %s" e);
  Netclient.close client

let test_v2_peer_gets_no_leases () =
  (* A cache-enabled client negotiated down to v2 sees lease-free
     replies: the cache stays empty and every read crosses the wire. *)
  let _, srv = lease_server () in
  let client = cached_client ~advertise_version:2 srv in
  let oid = create_object (Netclient.handle client) in
  check Alcotest.int "negotiated v2" 2 (Netclient.version client);
  for _ = 1 to 3 do
    ignore (Netclient.handle client cred (Rpc.Read { oid; off = 0; len = 16; at = None }))
  done;
  let cache = Option.get (Netclient.cache client) in
  check Alcotest.int "no hits without leases" 0 (Cache.hits cache);
  check Alcotest.int "nothing cached without leases" 0 (Cache.length cache);
  Netclient.close client

let test_no_lease_term_no_cache () =
  (* lease_ns = 0 (the default): a v3 session that simply grants no
     leases leaves the cache empty too. *)
  let drive = mk_drive () in
  let srv = Netserver.of_drive drive in
  let client = cached_client srv in
  let oid = create_object (Netclient.handle client) in
  for _ = 1 to 3 do
    ignore (Netclient.handle client cred (Rpc.Read { oid; off = 0; len = 16; at = None }))
  done;
  let cache = Option.get (Netclient.cache client) in
  check Alcotest.int "zero-term leases cache nothing" 0 (Cache.length cache);
  check Alcotest.int "no hits" 0 (Cache.hits cache);
  Netclient.close client

let test_cache_never_crosses_credentials () =
  (* One client carrying two principals: the owner's cached reply must
     not leak to a user the object's ACL denies — every principal's
     request is keyed (and so ACL-checked and read-audited) under its
     own credential. *)
  let drive, srv = lease_server () in
  let client = cached_client srv in
  let oid = create_object (Netclient.handle client) in
  let payload = Bytes.of_string "owner eyes only" in
  ignore
    (Netclient.handle client cred
       (Rpc.Write { oid; off = 0; len = Bytes.length payload; data = Some payload }));
  let rd c = Netclient.handle client c (Rpc.Read { oid; off = 0; len = Bytes.length payload; at = None }) in
  (match rd cred with
  | Rpc.R_data b -> check Alcotest.bytes "owner reads" payload b
  | r -> Alcotest.failf "owner read: %a" Rpc.pp_resp r);
  let cache = Option.get (Netclient.cache client) in
  (match rd cred with
  | Rpc.R_data _ -> check Alcotest.int "owner re-read served locally" 1 (Cache.hits cache)
  | r -> Alcotest.failf "owner re-read: %a" Rpc.pp_resp r);
  (* The denied user must hit the server and be refused, even though
     the same client holds a fresh leased reply for the same bytes. *)
  let intruder = Rpc.user_cred ~user:2 ~client:1 in
  let audits_before = Audit.record_count (Drive.audit drive) in
  (match rd intruder with
  | Rpc.R_error Rpc.Permission_denied -> ()
  | r -> Alcotest.failf "denied user got: %a" Rpc.pp_resp r);
  check Alcotest.int "denied probe stayed a miss" 1 (Cache.hits cache);
  check Alcotest.bool "denied probe reached the read audit" true
    (Audit.record_count (Drive.audit drive) > audits_before);
  (match Cache.check cache with Ok () -> () | Error e -> Alcotest.failf "lease checker: %s" e);
  Netclient.close client

let test_mutation_waits_out_peer_lease () =
  (* The server-side half of the lease contract: a mutation from one
     client may not apply while another client holds a live lease it
     would invalidate — the server waits the lease out (clock advance),
     so a cached reply is never superseded while still servable. *)
  let lease_ns = 5_000_000_000L in
  let drive, srv = lease_server ~lease_ns () in
  let reader = cached_client srv in
  let writer =
    Netclient.connect
      ~config:{ Netclient.default_config with Netclient.claim_client = 2 }
      (Nettransport.loopback ~identity:2 srv)
  in
  let oid = create_object (Netclient.handle reader) in
  let payload = Bytes.of_string "v1-leased" in
  ignore
    (Netclient.handle reader cred
       (Rpc.Write { oid; off = 0; len = Bytes.length payload; data = Some payload }));
  let rd () =
    Netclient.handle reader cred
      (Rpc.Read { oid; off = 0; len = Bytes.length payload; at = None })
  in
  ignore (rd ());
  let granted_at = Simclock'.now (Drive.clock drive) in
  let waits_before = Metrics.counter "net/lease_wait" in
  (* Another client overwrites: the server must stall the write past
     the reader's lease expiry before applying it. *)
  let v2 = Bytes.of_string "v2-leased" in
  (match
     Netclient.handle writer (Rpc.user_cred ~user:1 ~client:2)
       (Rpc.Write { oid; off = 0; len = Bytes.length v2; data = Some v2 })
   with
  | Rpc.R_unit -> ()
  | r -> Alcotest.failf "conflicting write: %a" Rpc.pp_resp r);
  check Alcotest.bool "write waited for the lease" true
    (Simclock'.now (Drive.clock drive) >= Int64.add granted_at lease_ns);
  check Alcotest.bool "wait was counted" true (Metrics.counter "net/lease_wait" > waits_before);
  (* By the time the reader can observe the write's effects (any reply
     carries the post-wait clock), its lease is dead: the next read
     refetches and sees v2, never a stale local answer. *)
  ignore (Netclient.handle reader cred Rpc.Sync);
  (match rd () with
  | Rpc.R_data b -> check Alcotest.bytes "reader sees the new bytes" v2 b
  | r -> Alcotest.failf "post-write read: %a" Rpc.pp_resp r);
  let cache = Option.get (Netclient.cache reader) in
  (match Cache.check cache with Ok () -> () | Error e -> Alcotest.failf "lease checker: %s" e);
  Netclient.close reader;
  Netclient.close writer

let test_own_lease_never_stalls_holder () =
  (* A client's own leases never fence its own mutations — it
     invalidates its cache on send, so there is nothing to protect and
     nothing to wait for. *)
  let lease_ns = 60_000_000_000L in
  let drive, srv = lease_server ~lease_ns () in
  let client = cached_client srv in
  let oid = create_object (Netclient.handle client) in
  let payload = Bytes.of_string "self-owned" in
  let wr () =
    ignore
      (Netclient.handle client cred
         (Rpc.Write { oid; off = 0; len = Bytes.length payload; data = Some payload }))
  in
  wr ();
  ignore
    (Netclient.handle client cred
       (Rpc.Read { oid; off = 0; len = Bytes.length payload; at = None }));
  let waits_before = Metrics.counter "net/lease_wait" in
  let t0 = Simclock'.now (Drive.clock drive) in
  wr ();
  check Alcotest.bool "write applied well within the lease term" true
    (Int64.sub (Simclock'.now (Drive.clock drive)) t0 < lease_ns);
  check Alcotest.int "no lease wait" waits_before (Metrics.counter "net/lease_wait");
  Netclient.close client

(* --- live-session fuzz ------------------------------------------------ *)

(* Arbitrary byte streams against a live session: the server must never
   raise, never wedge, and answer each poisoned connection with at most
   one protocol error. Mixing in valid frame prefixes makes the stream
   reach deeper states than pure noise would. *)
let prop_session_fuzz =
  let gen_chunks =
    QCheck.Gen.(
      list_size (1 -- 6)
        (oneof
           [
             map Bytes.of_string (string_size (0 -- 128));
             map Wire.encode gen_frame;
             (let* f = gen_frame and* cut = 0 -- 10_000 in
              let b = Wire.encode f in
              return (Bytes.sub b 0 (cut mod Bytes.length b)));
           ]))
  in
  QCheck.Test.make ~name:"live session survives arbitrary byte streams" ~count:150
    (QCheck.make ~print:(fun cs -> Printf.sprintf "%d chunks" (List.length cs)) gen_chunks)
    (fun chunks ->
      let drive = mk_drive () in
      let srv = Netserver.of_drive drive in
      let sess = Netserver.Session.create srv in
      List.iter (fun c -> Netserver.Session.feed sess c 0 (Bytes.length c)) chunks;
      Netserver.Session.run sess;
      let frames = decode_all (Netserver.Session.output sess) in
      let protos = List.filter (function Wire.Proto_error _ -> true | _ -> false) frames in
      List.length protos <= 1)

let () =
  Alcotest.run "s4_net"
    [
      ( "wire",
        [
          qtest prop_roundtrip;
          qtest prop_truncation;
          qtest prop_bitflip;
          qtest prop_garbage;
          Alcotest.test_case "oversized length rejected from header" `Quick
            test_oversized_rejected_from_header;
        ] );
      ( "session",
        [
          Alcotest.test_case "garbage answered, audited, connection closed" `Quick
            test_session_garbage_audited;
          Alcotest.test_case "max-inflight enforced" `Quick test_session_max_inflight;
          Alcotest.test_case "backend exception becomes Io_error" `Quick
            test_session_backend_exception;
          qtest prop_session_fuzz;
        ] );
      ( "loopback",
        [
          Alcotest.test_case "rpc round trip" `Quick test_loopback_rpc;
          Alcotest.test_case "connection identity cannot be spoofed" `Quick
            test_identity_not_spoofable;
          Alcotest.test_case "admin gating" `Quick test_admin_gating;
          Alcotest.test_case "oversized io rejected" `Quick test_oversized_io_rejected;
          Alcotest.test_case "retry, reconnect, no mutation replay" `Quick
            test_retry_and_reconnect;
        ] );
      ( "batch",
        [
          Alcotest.test_case "vectored submit over loopback" `Quick test_loopback_batch_submit;
          Alcotest.test_case "oversized submissions sliced at the limit" `Quick
            test_batch_chunking;
          Alcotest.test_case "v1 peer falls back to pipelining" `Quick
            test_v1_negotiation_fallback;
          Alcotest.test_case "batch frame refused on a v1 session" `Quick
            test_batch_frame_on_v1_session_rejected;
          Alcotest.test_case "over-limit batch refused" `Quick test_oversized_batch_rejected;
        ] );
      ( "lease",
        [
          Alcotest.test_case "v2 encoding carries no lease" `Quick
            test_v2_encoding_carries_no_lease;
          Alcotest.test_case "cache hit, wire silence, invalidation" `Quick
            test_lease_cache_hit_and_invalidate;
          Alcotest.test_case "expired lease never served" `Quick
            test_lease_expiry_never_served;
          Alcotest.test_case "v2 peer gets no leases" `Quick test_v2_peer_gets_no_leases;
          Alcotest.test_case "zero lease term caches nothing" `Quick
            test_no_lease_term_no_cache;
          Alcotest.test_case "cache never crosses credentials" `Quick
            test_cache_never_crosses_credentials;
          Alcotest.test_case "mutation waits out peer lease" `Quick
            test_mutation_waits_out_peer_lease;
          Alcotest.test_case "own lease never stalls holder" `Quick
            test_own_lease_never_stalls_holder;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "rpc + pipelining over sockets" `Quick test_tcp_rpc_and_pipelining;
          Alcotest.test_case "garbage gets protocol error; service continues" `Quick
            test_tcp_garbage_then_service;
          Alcotest.test_case "graceful shutdown refuses new work" `Quick
            test_tcp_shutdown_refuses_new_work;
        ] );
    ]
