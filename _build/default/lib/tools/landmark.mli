(** Landmark versioning on top of the history pool (the paper's
    Section 6: "By combining self-securing storage with long-term
    landmark versioning, recovery from users' accidents could be
    enhanced while also maintaining the benefits of intrusion
    survival").

    The history pool guarantees a bounded window; landmarks preserve
    chosen versions {e beyond} it, without weakening the pool's
    security properties: a landmark is a copy-forward of a specific
    version into a fresh, ordinary object (versioned and audited like
    everything else), indexed under a name. Expiry can then reclaim
    the original versions on schedule while the landmark survives
    indefinitely. *)

type t

type landmark = {
  l_name : string;
  l_source : int64;  (** object the landmark was taken of *)
  l_taken_at : int64;  (** the version instant preserved *)
  l_object : int64;  (** the archive object holding the copy *)
  l_bytes : int;
}

val create : ?cred:S4.Rpc.credential -> S4.Drive.t -> t
(** Uses (or creates) the drive partition ["landmarks"] as the archive
    index. Default credential: admin. *)

val take : t -> name:string -> at:int64 -> int64 -> (landmark, string) result
(** [take t ~name ~at oid] preserves [oid]'s version at time [at]
    (contents and attributes) under [name]. Fails if the name is
    already used or the version is no longer in the pool. *)

val list : t -> landmark list
(** All landmarks, newest first. *)

val find : t -> string -> landmark option

val contents : t -> string -> (Bytes.t, string) result
(** Read a landmark's preserved contents (a normal current read — no
    history access needed, which is the point). *)

val restore_to : t -> string -> int64 -> (int, string) result
(** Copy a landmark's contents forward onto a (live) object; returns
    bytes written. *)
