examples/mirrored_drives.ml: Bytes Format Printf S4 S4_disk S4_multi S4_util String
