(** The Section 5.2 differencing experiment.

    The paper took daily snapshots of its own CVS tree for a week,
    compiled each, and measured the space efficiency of Xdelta
    differencing (and differencing + compression) between neighbouring
    days: roughly 200% improvement from differencing and 500% in
    total. We reproduce the experiment on a synthetic evolving source
    tree ({!S4_workload.Source_tree}) with our own delta coder and LZ
    compressor. *)

type day = {
  day_index : int;
  tree_bytes : int;
  delta_bytes : int;  (** vs. the previous day; day 0 = full size *)
  delta_lz_bytes : int;
}

type result = {
  days : day list;
  total_raw : int;  (** bytes to keep all snapshots raw *)
  total_delta : int;  (** first snapshot + deltas *)
  total_delta_lz : int;
  diff_efficiency : float;  (** raw / delta: paper ~3.0 *)
  comp_efficiency : float;  (** raw / delta_lz: paper ~5.0 *)
}

val run : ?seed:int -> ?files:int -> ?days:int -> ?churn:float -> unit -> result
(** Defaults: 60 files, 7 days (a week, as in the paper), 12% daily
    churn. Deterministic for a given seed. *)

val pp_result : Format.formatter -> result -> unit
