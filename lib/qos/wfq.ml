(* Virtual-time weighted fair queueing.

   Each item gets a finish tag F = max (V, F_last client) + cost / w
   where V is the scheduler's virtual time and F_last is the finish tag
   of the client's previously enqueued item. pop serves the smallest F
   and advances V to it. V only moves forward, and a client that idles
   re-enters at the current V rather than banking credit from its idle
   period (start tags never predate V), which is what bounds how far a
   returning client can burst ahead of the others. *)

let weight_floor = 0.01
(* A fully-penalized client still drains at 1% share; WFQ shapes, it
   never starves outright. *)

type 'a item = {
  payload : 'a;
  finish : float;
  cost : float;
  seq : int; (* global enqueue order; tie-break so sorting is total *)
  client : int;
}

type client_state = {
  mutable last_finish : float;
  mutable queued : int;
  mutable served_cost : float;
}

type 'a t = {
  weight_of : int -> float;
  clients : (int, client_state) Hashtbl.t;
  (* One binary heap over every pending item, keyed by (finish, seq).
     Per-client FIFO holds because a client's finish tags are strictly
     increasing in enqueue order. *)
  mutable heap : 'a item array;
  mutable size : int;
  mutable vtime : float;
  mutable seq : int;
}

let create ?(weight_of = fun _ -> 1.0) () =
  {
    weight_of;
    clients = Hashtbl.create 16;
    heap = [||];
    size = 0;
    vtime = 0.0;
    seq = 0;
  }

let state t client =
  match Hashtbl.find_opt t.clients client with
  | Some s -> s
  | None ->
    let s = { last_finish = 0.0; queued = 0; served_cost = 0.0 } in
    Hashtbl.add t.clients client s;
    s

let before a b = a.finish < b.finish || (a.finish = b.finish && a.seq < b.seq)

let heap_push t item =
  if t.size = Array.length t.heap then begin
    let cap = max 16 (2 * t.size) in
    let bigger = Array.make cap item in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- item;
  t.size <- t.size + 1;
  (* sift up *)
  let i = ref (t.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    before t.heap.(!i) t.heap.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.heap.(parent) in
    t.heap.(parent) <- t.heap.(!i);
    t.heap.(!i) <- tmp;
    i := parent
  done

let heap_pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
        if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.heap.(!smallest) in
          t.heap.(!smallest) <- t.heap.(!i);
          t.heap.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some top
  end

let enqueue t ~client ~cost payload =
  let cost = if cost < 1.0 then 1.0 else cost in
  let w =
    let w = t.weight_of client in
    if Float.is_nan w || w < weight_floor then weight_floor else w
  in
  let s = state t client in
  let start = Float.max t.vtime s.last_finish in
  let finish = start +. (cost /. w) in
  s.last_finish <- finish;
  s.queued <- s.queued + 1;
  let item = { payload; finish; cost; seq = t.seq; client } in
  t.seq <- t.seq + 1;
  heap_push t item

let pop t =
  match heap_pop t with
  | None -> None
  | Some item ->
    let s = state t item.client in
    s.queued <- s.queued - 1;
    if item.finish > t.vtime then t.vtime <- item.finish;
    s.served_cost <- s.served_cost +. item.cost;
    Some item.payload

let peek_client t = if t.size = 0 then None else Some t.heap.(0).client
let length t = t.size
let pending t ~client = match Hashtbl.find_opt t.clients client with None -> 0 | Some s -> s.queued
let virtual_time t = t.vtime

let served t ~client =
  match Hashtbl.find_opt t.clients client with None -> 0.0 | Some s -> s.served_cost

let clients t = Hashtbl.fold (fun c _ acc -> c :: acc) t.clients [] |> List.sort compare
