(** NFSv2-level types: file handles, attributes, directory entries and
    the request/response vocabulary used by the translator and the
    comparison servers.

    File handles wrap the S4 ObjectID directly (the paper: "the NFS
    file handle can be directly hashed into the ObjectID"). Attributes
    mirror the NFSv2 [fattr] structure closely enough for the
    workloads; they live in the opaque per-object attribute space on
    the drive. *)

type fh = int64
(** NFS file handle = S4 ObjectID. *)

type ftype = Freg | Fdir | Flnk

type attr = {
  ftype : ftype;
  mode : int;
  nlink : int;
  uid : int;
  gid : int;
  size : int;
  mtime : int64;  (** simulated ns *)
  ctime : int64;
  atime : int64;
}

val fresh_attr : ftype -> uid:int -> now:int64 -> attr
val encode_attr : attr -> Bytes.t
val decode_attr : Bytes.t -> attr
(** @raise S4_util.Bcodec.Decode_error on corrupt input. *)

type dirent = { name : string; fh : fh }

(** Directory objects are arrays of fixed 64-byte slots (name up to
    {!max_name} bytes + handle), so namespace updates touch a single
    slot — one small write — rather than rewriting the directory. An
    all-zero slot is free. *)

val slot_size : int
val max_name : int

val encode_slot : dirent option -> Bytes.t
val decode_slot : Bytes.t -> pos:int -> dirent option
val encode_dir : dirent list -> Bytes.t
(** Dense slot array. *)

val decode_dir : Bytes.t -> dirent list
(** All occupied slots, in slot order. *)

val decode_dir_slots : Bytes.t -> (dirent * int) list * int
(** Occupied slots with their indexes, plus the total slot count. *)

type error =
  | Enoent
  | Eexist
  | Enotdir
  | Eisdir
  | Eacces
  | Enotempty
  | Enospc
  | Eio of string

val pp_error : Format.formatter -> error -> unit

(** NFSv2 procedures (v2 because its lack of client write caching lets
    the drive see and audit every operation, as the paper argues). *)
type req =
  | Getattr of fh
  | Setattr of { fh : fh; mode : int option; size : int option }
  | Lookup of { dir : fh; name : string }
  | Readlink of fh
  | Read of { fh : fh; off : int; len : int }
  | Write of { fh : fh; off : int; data : Bytes.t }
  | Create of { dir : fh; name : string; mode : int }
  | Remove of { dir : fh; name : string }
  | Rename of { from_dir : fh; from_name : string; to_dir : fh; to_name : string }
  | Mkdir of { dir : fh; name : string; mode : int }
  | Rmdir of { dir : fh; name : string }
  | Readdir of fh
  | Symlink of { dir : fh; name : string; target : string }
  | Statfs

type resp =
  | R_attr of attr
  | R_fh of fh * attr
  | R_data of Bytes.t
  | R_entries of dirent list
  | R_link of string
  | R_unit
  | R_statfs of { total_bytes : int; free_bytes : int }
  | R_error of error

val req_name : req -> string
val is_modifying : req -> bool
(** Whether NFSv2 stability semantics require a sync before reply. *)
