module Rng = S4_util.Rng

type result = {
  period_s : float;
  files_captured : float;
  short_lived_captured : float;
  versions_captured : float;
  mean_loss_window_s : float;
}

let capture_probability ~period_s ~lifetime_s =
  if period_s <= 0.0 then invalid_arg "Snapshots.capture_probability";
  Float.min 1.0 (lifetime_s /. period_s)

let comprehensive =
  {
    period_s = 0.0;
    files_captured = 1.0;
    short_lived_captured = 1.0;
    versions_captured = 1.0;
    mean_loss_window_s = 0.0;
  }

let simulate ?(seed = 31) ?(events = 20_000) ?(mean_lifetime_s = 600.0)
    ?(versions_per_file = 4.0) ~period_s () =
  if period_s <= 0.0 then invalid_arg "Snapshots.simulate";
  let rng = Rng.create ~seed in
  let files_seen = ref 0 in
  let short_total = ref 0 in
  let short_seen = ref 0 in
  let versions_total = ref 0 in
  let versions_seen = ref 0 in
  let loss_sum = ref 0.0 in
  let loss_n = ref 0 in
  for _ = 1 to events do
    (* File born at a uniformly random phase of the snapshot cycle. *)
    let birth = Rng.float rng period_s in
    let lifetime = Rng.exponential rng ~mean:mean_lifetime_s in
    let death = birth +. lifetime in
    (* Snapshot instants are at multiples of the period. *)
    let first_snap = period_s *. Float.of_int (int_of_float (birth /. period_s) + 1) in
    let seen = first_snap <= death in
    if seen then incr files_seen;
    if lifetime < 300.0 then begin
      incr short_total;
      if seen then incr short_seen
    end;
    (* Modifications spread uniformly over the lifetime; a version is
       captured iff a snapshot falls between it and the next change
       (or the file's death). *)
    let nversions = 1 + Rng.int rng (max 1 (int_of_float (2.0 *. versions_per_file))) in
    let cuts = Array.init nversions (fun _ -> birth +. Rng.float rng lifetime) in
    Array.sort compare cuts;
    for i = 0 to nversions - 1 do
      incr versions_total;
      let v_start = cuts.(i) in
      let v_end = if i = nversions - 1 then death else cuts.(i + 1) in
      let snap_after = period_s *. Float.of_int (int_of_float (v_start /. period_s) + 1) in
      if snap_after <= v_end then incr versions_seen
      else begin
        (* This version was destroyed before any snapshot saw it: the
           newest surviving copy is the last snapshotted state, aged by
           the gap. *)
        loss_sum := !loss_sum +. (v_end -. (snap_after -. period_s));
        incr loss_n
      end
    done
  done;
  {
    period_s;
    files_captured = float_of_int !files_seen /. float_of_int events;
    short_lived_captured =
      (if !short_total = 0 then 1.0 else float_of_int !short_seen /. float_of_int !short_total);
    versions_captured = float_of_int !versions_seen /. float_of_int !versions_total;
    mean_loss_window_s = (if !loss_n = 0 then 0.0 else !loss_sum /. float_of_int !loss_n);
  }

let sweep ?seed ~periods_s () = List.map (fun p -> simulate ?seed ~period_s:p ()) periods_s
