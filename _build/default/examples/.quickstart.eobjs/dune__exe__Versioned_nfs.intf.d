examples/versioned_nfs.mli:
