lib/tools/diagnosis.mli: Format S4
