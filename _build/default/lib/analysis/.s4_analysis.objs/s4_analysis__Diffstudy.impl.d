lib/analysis/diffstudy.ml: Bytes Format List S4_compress S4_util S4_workload
