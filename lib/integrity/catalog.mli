(** Cross-shard integrity catalog: the meta shard's replicated copy of
    every member drive's sealed chain head, refreshed at each
    array-wide barrier. Entries are a floor — the member's chain must
    contain the catalog head as an ancestor.

    Each entry carries [at], the array time it was last refreshed. A
    floor retained for a member that has left the array ages out once
    it falls behind the detection window: like every other piece of
    history the drive keeps, its evidentiary value ends where the
    window does. *)

type entry = { shard : int; replica : int; head : Chain.head; at : int64 }

val encode : entry list -> Bytes.t

val decode : Bytes.t -> entry list option
(** Accepts the current codec and the pre-[at] v1 layout (whose
    entries decode with [at = 0]). *)

val find : entry list -> shard:int -> replica:int -> Chain.head option
val find_entry : entry list -> shard:int -> replica:int -> entry option
val set : entry list -> shard:int -> replica:int -> at:int64 -> Chain.head -> entry list

val prune : entry list -> now:int64 -> window:int64 -> live:(shard:int -> replica:int -> bool) -> entry list
(** Drop entries for members that are not [live] whose [at] stamp has
    fallen out of the detection window ([at < now - window]). Live
    members' floors are never pruned, however old: they are refreshed
    in place and remain cross-checkable. *)

type status =
  | Consistent
  | Stale_catalog
  | Rolled_back
  | Forked

val check : catalog:Chain.head -> member:Chain.head -> status
