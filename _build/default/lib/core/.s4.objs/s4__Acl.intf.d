lib/core/acl.mli: Bytes Format
