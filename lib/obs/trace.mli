(** Span tracer for the simulated storage stack.

    A span covers one operation at one layer; spans nest by call
    structure (the currently open span is the parent of the next one
    opened), so a single client request yields one tree reaching from
    the NFS translator down to individual disk transfers. All times
    are simulated nanoseconds read from the layer's {!S4_util.Simclock}.

    {b Zero allocation when disabled.} Instrumented code must guard
    every hook on {!on} — [if Trace.on () then ...] — and hold the
    returned token in an [int]. When tracing is off, {!on} is a single
    mutable-bool read, no token is minted, and every setter is a no-op
    on {!null}; the traced and untraced executions are identical (the
    equivalence suite proves this bit-for-bit and clock-for-clock).

    {b Observationally free.} No function in this module reads or
    advances a clock, touches a disk, or mutates anything outside the
    tracer's own buffers; callers pass [~now] in explicitly.

    {b Domain-safe.} Span allocation and snapshots are serialized on a
    registry mutex; each domain keeps its own open-span stack in
    domain-local storage, so spans opened on a shard worker domain
    nest within that domain's call structure and root their own tree.
    A span's fields are written only by the domain that opened it;
    take {!spans} at quiescence. {!on} remains one atomic load. *)

type layer = Nfs | Net | Router | Drive | Store | Seglog | Disk

val layer_name : layer -> string

type span = {
  id : int;  (** index into {!spans} *)
  parent : int;  (** parent span id, or -1 for a root *)
  layer : layer;
  kind : string;  (** op name at that layer, e.g. ["write"] *)
  start_ns : int64;
  mutable stop_ns : int64;  (** {!unset} until finished *)
  mutable oid : int64;  (** -1 when not object-scoped *)
  mutable shard : int;  (** -1 when not routed *)
  mutable bytes : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable faults : int;  (** permanent media faults surfaced *)
  mutable retries : int;  (** transient-fault retries absorbed *)
  mutable at_ns : int64;  (** time-based read target; {!unset} if none *)
  mutable cutoff_ns : int64;  (** detection-window cutoff at entry; {!unset} *)
  mutable charged_ns : int64;  (** fan-out slowest-member charge; {!unset} *)
  mutable disk_ns : int64;  (** device service time attributed; {!unset} *)
  mutable ok : bool;
  mutable err : string;  (** error tag when [not ok]; [""] otherwise *)
}

val unset : int64
(** Sentinel for optional [int64] span fields ([Int64.min_int]). *)

val null : int
(** The no-op token (-1); every setter ignores it. *)

(** {1 Lifecycle} *)

val on : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val clear : unit -> unit
(** Drop all recorded spans and the open-span stack. *)

val count : unit -> int
(** Spans recorded so far (open and finished). *)

val spans : unit -> span array
(** Snapshot of all recorded spans in creation (id) order. *)

(** {1 Recording} *)

val enter : layer -> kind:string -> now:int64 -> int
(** Open a span under the currently open one and return its token.
    Returns {!null} when tracing is disabled. *)

val finish : int -> now:int64 -> unit
(** Close the span. Any children left open (an exception unwound
    through an uninstrumented frame) are closed at the same instant
    and tagged ["abandoned"]. Feeds the {!Metrics} registry with a
    latency sample under ["<layer>/<kind>"] plus per-layer counters. *)

val abort : int -> now:int64 -> unit
(** {!finish} with [ok] forced to false. *)

val emit :
  layer ->
  kind:string ->
  start_ns:int64 ->
  stop_ns:int64 ->
  ?bytes:int ->
  ?disk_ns:int64 ->
  unit ->
  unit
(** Record an already-completed leaf span (used by the disk layer,
    whose operations are atomic in simulated time). The parent is the
    currently open span. No-op when disabled. *)

(** {1 Field setters — all no-ops on {!null}} *)

val set_oid : int -> int64 -> unit
val set_shard : int -> int -> unit
val set_bytes : int -> int -> unit
val add_cache : int -> hits:int -> misses:int -> unit
val add_faults : int -> int -> unit
val add_retries : int -> int -> unit
val set_at : int -> int64 -> unit
val set_cutoff : int -> int64 -> unit

val add_charged : int -> int64 -> unit
(** Accumulate fan-out charge (summed across charges in one span). *)

val set_disk_ns : int -> int64 -> unit
val fail : int -> string -> unit
(** Mark the span failed with an error tag (e.g. ["not_found"]). *)

(** {1 Rendering} *)

val pp_span : Format.formatter -> span -> unit

val pp_tree : Format.formatter -> span array -> unit
(** Indented forest view of a span snapshot. *)
