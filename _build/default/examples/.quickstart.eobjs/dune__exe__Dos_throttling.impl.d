examples/dos_throttling.ml: Bytes Int64 Printf S4 S4_disk S4_util
