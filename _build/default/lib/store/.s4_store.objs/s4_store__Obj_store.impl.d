lib/store/obj_store.ml: Array Bytes Entry Format Hashtbl Int32 Int64 List Lru Option S4_seglog S4_util
