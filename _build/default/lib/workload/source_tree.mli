(** Synthetic evolving source tree for the Section 5.2 differencing
    experiment.

    The paper checked the S4 code base out of CVS once a day for a
    week, compiled it, and ran Xdelta (+compression) between
    neighbouring days. We have no CVS repository, so we generate a
    source tree of realistic, compressible program text and evolve it
    day by day with localized edits (line changes, function additions,
    file additions/removals) plus derived "object files" that change
    whenever their source changes — exercising the same
    cross-version-differencing code path on the same kind of data. *)

type file = { path : string; content : Bytes.t }
type t = file list

val generate : S4_util.Rng.t -> files:int -> t
(** A fresh tree of program-text files (plus derived binaries). *)

val evolve : S4_util.Rng.t -> ?churn:float -> t -> t
(** One "day" of development: roughly [churn] (default 0.12) of the
    files receive localized edits; occasionally a file is added or
    deleted. Derived binaries follow their sources. *)

val total_bytes : t -> int
val find : t -> string -> Bytes.t option
