exception Decode_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Decode_error s)) fmt

let get_u16 b off = Char.code (Bytes.get b off) lor (Char.code (Bytes.get b (off + 1)) lsl 8)

let set_u16 b off v =
  Bytes.set b off (Char.chr (v land 0xFF));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xFF))

let get_u32 b off = get_u16 b off lor (get_u16 b (off + 2) lsl 16)

let set_u32 b off v =
  set_u16 b off (v land 0xFFFF);
  set_u16 b (off + 2) ((v lsr 16) land 0xFFFF)

let get_i64 b off = Bytes.get_int64_le b off
let set_i64 b off v = Bytes.set_int64_le b off v

type writer = Buffer.t

let writer ?(capacity = 64) () = Buffer.create capacity
let w_u8 w v = Buffer.add_char w (Char.chr (v land 0xFF))

let w_u16 w v =
  w_u8 w v;
  w_u8 w (v lsr 8)

let w_u32 w v =
  w_u16 w (v land 0xFFFF);
  w_u16 w ((v lsr 16) land 0xFFFF)

let w_i64 w v = Buffer.add_int64_le w v

let rec w_int w v =
  if v < 0 then invalid_arg "Bcodec.w_int: negative";
  if v < 0x80 then w_u8 w v
  else begin
    w_u8 w (0x80 lor (v land 0x7F));
    w_int w (v lsr 7)
  end

let w_raw w b = Buffer.add_bytes w b

let w_bytes w b =
  w_int w (Bytes.length b);
  w_raw w b

let w_string w s =
  w_int w (String.length s);
  Buffer.add_string w s

let length = Buffer.length
let contents w = Buffer.to_bytes w

type reader = { buf : Bytes.t; mutable pos : int }

let reader ?(pos = 0) buf = { buf; pos }

let need r n = if r.pos + n > Bytes.length r.buf then fail "truncated: need %d at %d/%d" n r.pos (Bytes.length r.buf)

let r_u8 r =
  need r 1;
  let v = Char.code (Bytes.get r.buf r.pos) in
  r.pos <- r.pos + 1;
  v

let r_u16 r =
  need r 2;
  let v = get_u16 r.buf r.pos in
  r.pos <- r.pos + 2;
  v

let r_u32 r =
  need r 4;
  let v = get_u32 r.buf r.pos in
  r.pos <- r.pos + 4;
  v

let r_i64 r =
  need r 8;
  let v = get_i64 r.buf r.pos in
  r.pos <- r.pos + 8;
  v

let r_int r =
  let rec loop shift acc =
    if shift > 62 then fail "varint too long";
    let b = r_u8 r in
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b land 0x80 = 0 then acc else loop (shift + 7) acc
  in
  loop 0 0

let r_raw r n =
  if n < 0 then fail "negative length";
  need r n;
  let b = Bytes.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  b

let r_bytes r =
  let n = r_int r in
  r_raw r n

let r_string r = Bytes.unsafe_to_string (r_bytes r)
let remaining r = Bytes.length r.buf - r.pos
let position r = r.pos
