module Simclock = S4_util.Simclock

type stats = {
  mutable rpcs : int;
  mutable bytes_sent : int;
  mutable bytes_received : int;
  mutable wire_ns : int64;
}

type t = {
  clock : Simclock.t;
  latency_us : float;
  bandwidth_mb_s : float;
  s : stats;
}

let create ?(latency_us = 120.0) ?(bandwidth_mb_s = 12.5) clock =
  {
    clock;
    latency_us;
    bandwidth_mb_s;
    s = { rpcs = 0; bytes_sent = 0; bytes_received = 0; wire_ns = 0L };
  }

let transfer_us t bytes = float_of_int bytes /. t.bandwidth_mb_s (* B / (MB/s) = us *)

let account t us =
  let ns = Simclock.of_us us in
  Simclock.advance t.clock ns;
  t.s.wire_ns <- Int64.add t.s.wire_ns ns

let rpc t ~req_bytes ~resp_bytes =
  t.s.rpcs <- t.s.rpcs + 1;
  t.s.bytes_sent <- t.s.bytes_sent + req_bytes;
  t.s.bytes_received <- t.s.bytes_received + resp_bytes;
  account t ((2.0 *. t.latency_us) +. transfer_us t req_bytes +. transfer_us t resp_bytes)

let oneway t ~bytes =
  t.s.bytes_sent <- t.s.bytes_sent + bytes;
  account t (t.latency_us +. transfer_us t bytes)

let stats t = t.s

let reset_stats t =
  t.s.rpcs <- 0;
  t.s.bytes_sent <- 0;
  t.s.bytes_received <- 0;
  t.s.wire_ns <- 0L

let pp_stats ppf t =
  Format.fprintf ppf "net: %d rpcs, %d B out, %d B in, wire %.3f s" t.s.rpcs t.s.bytes_sent
    t.s.bytes_received
    (Int64.to_float t.s.wire_ns /. 1e9)
