(** Uniform NFS server handle.

    Benchmarks and examples drive every system under test — the two S4
    configurations and the comparison servers — through this one
    record, so a workload is written once and runs against all four
    experimental setups of the paper. *)

type t = {
  name : string;
  root : Nfs_types.fh;
  handle : Nfs_types.req -> Nfs_types.resp;
  reset_caches : unit -> unit;  (** model a cold client/server cache *)
}

val of_translator : name:string -> Translator.t -> t

val over_net : S4_disk.Net.t -> t -> t
(** Interpose the network: every NFS request/response pays modelled
    wire time (used when the translator lives server-side, Fig. 1b,
    and for the kernel-NFS comparison servers). *)

val nfs_req_bytes : Nfs_types.req -> int
val nfs_resp_bytes : Nfs_types.resp -> int
(** Quick size estimates; {!over_net} itself uses the exact
    {!Xdr} encoding. *)

val handle_exn : t -> Nfs_types.req -> Nfs_types.resp
(** Raises [Failure] on [R_error]; for tests and workload setup. *)
