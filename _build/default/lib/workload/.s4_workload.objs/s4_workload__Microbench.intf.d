lib/workload/microbench.mli: Format Systems
