lib/workload/daily.mli: Format Systems
