lib/seglog/tag.ml: Format Printf S4_util
